package core

import (
	"fmt"
	"math"

	"repro/internal/detect"
	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simctx"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
)

// msgHdr is the two-slot message header preceding the exchanged values: the
// sender's own iteration version and, for the specific receiver, the highest
// version of the *receiver's* data the sender has incorporated so far (the
// causal echo). The asynchronous detection uses the echo to require a full
// round trip of stabilized data before declaring local convergence, which is
// what keeps detection sound when messages pipeline over high-latency links.
const msgHdr = 2

// rankState is one rank's full solver state for the band engine: the
// factored subsystem, its view of the shared communication plan and the
// iteration vectors. The engine loop (msRank) drives it through an
// exchangePolicy and a stopper.
type rankState struct {
	c    *mp.Comm
	ctx  *simctx.Ctx
	o    Options
	rank int
	d    *Decomposition
	band Band

	// aGlob and bGlob are the globally-readable system (paper
	// Initialization); the adaptive resplit transition re-extracts the new
	// band from them. gen counts the resplit transitions this rank has
	// applied — the persistent Session uses it to notice that its frozen
	// value-refresh maps went stale.
	aGlob *sparse.CSR
	bGlob []float64
	gen   int

	sub     *sparse.CSR
	depMat  *sparse.CSR
	depCols []int
	fact    splu.Factorization
	bSub    []float64
	xSub    []float64
	xPrev   []float64
	rhs     []float64
	z       []float64 // weighted dependency values (zero start)

	// stepFlops is the analytic cost of one computation step (SpMV against
	// the dependency columns + triangular solves + difference norm); it is
	// exact, so declaring it up front leaves nothing for Charge to reconcile.
	stepFlops float64
	// stepFn is the computation-step segment body, built once so the
	// per-iteration ComputeSeg call allocates no closure; it reports a
	// non-finite iterate through the diverged flag.
	stepFn   func()
	diverged bool
	// factFlops accumulates this rank's factorization arithmetic (exact LU
	// or band preconditioner, plus any two-stage fallback factor) for
	// Result.FactorFlops.
	factFlops float64

	// ts is the two-stage inner-iteration state (nil in exact mode; see
	// twostage.go). While active, stepFn points at tsStep and the declared
	// step cost varies with the schedule's sweep count.
	ts *twoStageState

	// cp is the shared communication plan; rp is this rank's view (one
	// packed message per peer per iteration, see internal/plan).
	cp *plan.Plan
	rp *plan.RankPlan
	// recvGroupByPeer maps a contributor rank to its index in rp.Recv.
	recvGroupByPeer map[int]int
	verIncorporated []float64 // latest version seen per recv group
	echoFrom        []float64 // highest own version echoed back, per group
	// lastRecv[g] holds the last packed values received from recv group g so
	// z can be updated incrementally under the weighting scheme.
	lastRecv [][]float64

	// freshSeen tracks, per recv group, whether new data arrived since the
	// last complete exchange round; async convergence evidence only counts
	// on complete rounds (see asyncPolicy).
	freshSeen  []bool
	staleCount []int
	sendBuf    []float64

	// gw is the gateway-aggregation state (nil in direct mode or when the
	// platform is flat): inter-cluster groups route through per-cluster
	// aggregator ranks instead of direct WAN messages.
	gw *gwState

	iter        int
	diff        float64 // successive-iterate difference of the last step
	stableRuns  int
	stableStart int // first iteration of the current stable streak
}

// newRankState loads and factors the rank's band (paper step 1 + Remark 4)
// and wires the rank into the shared communication plan (DependsOnMe of
// Algorithm 1, built once in Launch). It returns the state and the
// factorization time.
func newRankState(c *mp.Comm, ctx *simctx.Ctx, a *sparse.CSR, bGlob []float64, d *Decomposition, cp *plan.Plan, o Options) (*rankState, float64, error) {
	rank := c.Rank()
	band := d.Bands[rank]
	st := &rankState{c: c, ctx: ctx, o: o, rank: rank, d: d, band: band, cp: cp,
		aGlob: a, bGlob: bGlob}
	st.rp = &cp.Ranks[rank]

	// --- Initialization: load and factor the band.
	st.sub = a.Submatrix(band.Lo, band.Hi, band.Lo, band.Hi)
	st.depCols = cp.DepCols[rank]
	st.depMat = a.SelectColumns(band.Lo, band.Hi, st.depCols)
	st.bSub = vec.Clone(bGlob[band.Lo:band.Hi])

	if err := ctx.Alloc(csrBytes(st.sub) + csrBytes(st.depMat) + 8*int64(band.Size())); err != nil {
		return nil, 0, err
	}
	factStart := c.Now()
	factFlops0 := ctx.Counter.Flops()
	factName := "factor"
	// Two-stage mode factors the narrow band preconditioner instead of the
	// full band LU — O(n·width) memory instead of the LU fill (twostage.go).
	// A singular preconditioner band falls through to the exact path.
	if o.TwoStage.enabled() {
		built, err := st.buildTwoStage()
		if err != nil {
			return nil, 0, err
		}
		if built {
			factName = "precond-factor"
		}
	}
	if st.ts == nil {
		solver := o.Solver
		if o.SolverPerRank != nil && o.SolverPerRank[rank] != nil {
			solver = o.SolverPerRank[rank]
		}
		// The factorization's cost depends on the fill it discovers, so it is a
		// deferred segment: it runs on the worker pool (overlapping the other
		// ranks' factorizations) and its counted flops are charged on completion.
		// Reading fact/factErr right after the call is safe: ComputeDeferred's
		// commit guarantee (see vgrid) is that fn has completed and its writes
		// are visible before the call returns, for any worker count.
		var fact splu.Factorization
		var factErr error
		c.ComputeDeferred(func() float64 {
			fact, factErr = solver.Factor(st.sub, ctx.Cnt())
			return ctx.Counter.Flops() - ctx.Charged
		})
		if factErr != nil {
			return nil, 0, fmt.Errorf("rank %d: %w", rank, factErr)
		}
		st.fact = fact
	}
	factTime := c.Now() - factStart
	st.factFlops = ctx.Counter.Flops() - factFlops0
	if sc := ctx.Observe(); sc != nil {
		sc.Span(obs.Span{Cat: obs.CatFact, Name: factName,
			Start: factStart, End: c.Now(), Flops: st.factFlops})
	}
	if st.fact != nil {
		if err := ctx.Alloc(st.fact.Bytes()); err != nil {
			return nil, 0, err
		}
	}

	// --- Iteration state over the shared plan: per-peer receive groups with
	// preallocated incremental-update buffers, one reused send buffer sized
	// by the largest packed message. All the float state sub-slices a single
	// arena (three-index slicing keeps the append-grown sendBuf in its lane).
	ng := len(st.rp.Recv)
	sz := band.Size()
	sendCap := cp.MaxSendVals(rank) + msgHdr
	recvVals := 0
	for _, g := range st.rp.Recv {
		recvVals += g.Vals
	}
	scratch := 0
	if st.ts != nil {
		scratch = 2 * sz // inner-sweep residual + correction vectors
	}
	arena := make([]float64, 3*sz+scratch+len(st.depCols)+sendCap+2*ng+recvVals)
	take := func(n int) []float64 {
		s := arena[:n:n]
		arena = arena[n:]
		return s
	}
	st.xSub = take(sz)
	st.xPrev = take(sz)
	st.rhs = take(sz)
	if st.ts != nil {
		st.ts.r = take(sz)
		st.ts.t = take(sz)
	}
	st.z = take(len(st.depCols))
	st.sendBuf = take(sendCap)[:0]
	st.recvGroupByPeer = map[int]int{}
	for gi, g := range st.rp.Recv {
		st.recvGroupByPeer[g.Peer] = gi
	}
	st.verIncorporated = take(ng)
	st.echoFrom = take(ng)
	st.lastRecv = make([][]float64, ng)
	for gi, g := range st.rp.Recv {
		st.lastRecv[gi] = take(g.Vals)
	}
	st.freshSeen = make([]bool, ng)
	st.staleCount = make([]int, ng)
	if o.Gateway {
		// The reduction piggyback needs a pre-exchange criterion (the
		// successive-iterate difference) and the lockstep of the synchronous
		// policy.
		st.gw = newGwState(cp, rank, rankClusters(c), !o.Async && !o.UseResidual)
	}

	// SpMV counts 2·nnz, the triangular solves a factor-determined constant,
	// the difference norm 2·n — all exact integers, so the declared cost
	// matches the counted flops bit for bit. In two-stage mode the step cost
	// varies with the schedule's sweep count and is computed per iteration
	// (twoStageState.stageCost).
	if st.ts != nil {
		st.stepFn = st.tsStep
	} else {
		st.stepFlops = 2*float64(st.depMat.NNZ()) + st.fact.SolveFlops() + 2*float64(band.Size())
		st.stepFn = st.step
	}
	return st, factTime, nil
}

// applyFaultOptions arms the communicator's retransmission policy when the
// degraded mode is on; on a healthy configuration it changes nothing.
func applyFaultOptions(c *mp.Comm, o Options) {
	if o.FaultTolerant {
		c.Retry = mp.RetryPolicy{Attempts: o.SendRetries, Backoff: o.SendBackoff}
	}
}

// recvCritical receives a message the protocol cannot progress without (a
// synchronous boundary exchange, the final gather). In fault-tolerant mode
// it waits in DeadRankTimeout windows instead of blocking forever and, once
// the budget is exhausted, diagnoses the silent peer: crashed host, failed
// process, or plain message loss.
func (st *rankState) recvCritical(from, tag int, what string) (*mp.Packet, error) {
	c, o := st.c, st.o
	if !o.FaultTolerant {
		return c.Recv(from, tag), nil
	}
	for attempt := 1; attempt <= o.SendRetries; attempt++ {
		if pk := c.RecvTimeout(from, tag, o.DeadRankTimeout); pk != nil {
			return pk, nil
		}
		st.ctx.Faultf("rank %d iter %d: no %s from rank %d after %.3fs (attempt %d/%d)",
			st.rank, st.iter, what, from, o.DeadRankTimeout, attempt, o.SendRetries)
	}
	switch {
	case c.PeerFailed(from):
		return nil, fmt.Errorf("rank %d: rank %d appears dead waiting for %s: process failed: %w",
			st.rank, from, what, c.PeerErr(from))
	case c.PeerDown(from):
		return nil, fmt.Errorf("rank %d: rank %d appears dead waiting for %s: its host is down",
			st.rank, from, what)
	default:
		return nil, fmt.Errorf("rank %d: rank %d appears dead waiting for %s: silent for %.3gs",
			st.rank, from, what, float64(o.SendRetries)*o.DeadRankTimeout)
	}
}

// applyGroup incorporates one peer's packed update (direct message or
// gateway-forwarded record): incremental z update under the weighting
// scheme, segment by segment in the group's canonical order, plus
// version/echo bookkeeping. vals carries exactly the group's Vals values.
func (st *rankState) applyGroup(gi int, ver, echo float64, vals []float64) {
	st.verIncorporated[gi] = ver
	if echo < 0 {
		// The sender does not depend on us: no echo is possible, the
		// round-trip criterion is vacuously satisfied for this channel.
		st.echoFrom[gi] = math.Inf(1)
	} else if echo > st.echoFrom[gi] {
		st.echoFrom[gi] = echo
	}
	g := &st.rp.Recv[gi]
	last := st.lastRecv[gi]
	off := 0
	for _, s := range g.Segs {
		for i, pos := range s.Pos {
			v := vals[off+i]
			st.z[pos] += s.Weights[i] * (v - last[off+i])
			last[off+i] = v
		}
		off += len(s.Pos)
	}
	st.ctx.Counter.Add(3 * float64(g.Vals))
}

// reflFor returns the echo header for a message to peer: the highest of the
// peer's versions this rank has incorporated, or −1 when this rank does not
// depend on the peer at all.
func (st *rankState) reflFor(peer int) float64 {
	if gi, ok := st.recvGroupByPeer[peer]; ok {
		return st.verIncorporated[gi]
	}
	return -1
}

// packVals appends the group's boundary values (xSub at each segment's
// producer-local indices, in the group's canonical segment order) to buf.
func (st *rankState) packVals(g *plan.PeerIO, buf []float64) []float64 {
	for _, s := range g.Segs {
		for _, li := range s.Loc {
			buf = append(buf, st.xSub[li])
		}
	}
	return buf
}

// iterate runs the computation step (step 2): BLoc = BSub − Dep·z, solve the
// subsystem, measure the successive-iterate difference. The whole step is a
// pure compute segment with an analytically known cost, so it is declared up
// front and its arithmetic overlaps other ranks' segments on the worker pool.
func (st *rankState) iterate() error {
	if st.ts != nil && !st.ts.fellBack {
		return st.iterateTwoStage()
	}
	st.diverged = false
	st.c.ComputeSeg(st.stepFlops, st.stepFn)
	if st.diverged {
		return fmt.Errorf("rank %d: %w at iteration %d", st.rank, ErrDiverged, st.iter)
	}
	return nil
}

// step is the segment body run by iterate on the worker pool (referenced via
// stepFn; it must touch only this rank's state, never the simulator).
func (st *rankState) step() {
	cnt := st.ctx.Counter
	copy(st.rhs, st.bSub)
	if len(st.depCols) > 0 {
		st.depMat.MulVecSub(st.rhs, st.z, cnt)
	}
	st.fact.Solve(st.xSub, st.rhs, cnt)
	if !vec.AllFinite(st.xSub) {
		st.diverged = true
		return
	}
	st.diff = vec.DiffNormInf(st.xSub, st.xPrev, cnt)
	copy(st.xPrev, st.xSub)
}

// ship sends this rank's boundary components to their dependents (step 3):
// one packed message per peer group. In gateway mode the inter-cluster
// groups are batched through the cluster aggregator instead.
func (st *rankState) ship() error {
	for gi := range st.rp.Send {
		g := &st.rp.Send[gi]
		if st.gw != nil && st.gw.sendViaGw[gi] {
			continue
		}
		st.sendBuf = append(st.sendBuf[:0], float64(st.iter), st.reflFor(g.Peer))
		st.sendBuf = st.packVals(g, st.sendBuf)
		if err := st.c.SendFloats(g.Peer, tagX, st.sendBuf); err != nil {
			return err
		}
	}
	if st.gw != nil {
		return st.gw.shipInter(st)
	}
	return nil
}

// msRank is the body of Algorithm 1 executed by every rank: one engine loop
// — iterate, ship, exchange — parameterized by the exchange policy
// (synchronous barrier, asynchronous freshest-drain, or bounded staleness)
// and the stopping criterion (successive iterate or true residual).
func msRank(c *mp.Comm, a *sparse.CSR, bGlob []float64, d *Decomposition, cp *plan.Plan, o Options, pend *Pending) error {
	c.Tree = o.TreeCollectives
	c.Topo = o.TopoCollectives
	ctx := simctx.New()
	ctx.Trace = o.Trace
	ctx.Obs = obs.NewScope(c.Proc().Obs(), c.Proc().Name)
	if o.TrackMemory {
		ctx.Mem = c.Proc()
	}
	c.AttachCtx(ctx)
	applyFaultOptions(c, o)

	st, factTime, err := newRankState(c, ctx, a, bGlob, d, cp, o)
	if err != nil {
		return err
	}
	return msRankRun(st, pend, factTime)
}

// msRankRun drives an initialized rank state through the engine loop and the
// final gather. It is shared by the one-shot driver (msRank) and the
// persistent Session, which rebuilds only the numeric state between calls.
func msRankRun(st *rankState, pend *Pending, factTime float64) error {
	c, o := st.c, st.o

	var det detect.Detector
	var err error
	if o.Async {
		det, err = detect.New(o.Detector, c)
		if err != nil {
			return err
		}
	}
	policy := newExchangePolicy(o, det)
	stop := newStopper(o)
	ad := newAdaptRank(st)

	converged := false
	aborted := false
	for st.iter < o.MaxIter {
		st.iter++
		iterStart := c.Now()
		if err := st.iterate(); err != nil {
			return err
		}
		if err := st.ship(); err != nil {
			return err
		}
		out, err := policy.exchange(st, stop)
		if err != nil {
			return err
		}
		if sc := st.ctx.Observe(); sc != nil {
			sc.Span(obs.Span{Cat: obs.CatIter, Name: "iter", Iter: st.iter,
				Start: iterStart, End: c.Now()})
		}
		if out == outConverged {
			converged = true
			break
		}
		if out == outAborted {
			aborted = true
			break
		}
		// The adaptive epoch runs between iterations, after the convergence
		// decision, so a resplit never races the exchange: every rank reaches
		// it in lockstep and the next iteration runs whole on the new bands.
		if ad != nil && ad.due(st.iter) {
			if err := ad.epoch(st, pend); err != nil {
				return err
			}
		}
	}
	if !converged && !aborted && o.Async {
		// Hit the cap: tell everyone to stop so the run terminates.
		for m := 0; m < c.Size(); m++ {
			if m != st.rank {
				if err := c.Signal(m, tagAbort); err != nil {
					return err
				}
			}
		}
	}

	// Assemble the solution from the owned segments at rank 0. Read the
	// decomposition through st: a resplit replaced it mid-run, and all ranks
	// hold the same final bands.
	d := st.d
	band := st.band
	owned := st.xSub[band.Start-band.Lo : band.End-band.Lo]
	if st.rank != 0 {
		if err := c.SendFloats(0, tagGather, owned); err != nil {
			return err
		}
	} else {
		x := make([]float64, d.N)
		copy(x[band.Start:band.End], owned)
		for m := 1; m < d.L(); m++ {
			pk, err := st.recvCritical(m, tagGather, "solution segment")
			if err != nil {
				return err
			}
			mb := d.Bands[m]
			copy(x[mb.Start:mb.End], pk.Floats)
			c.Release(pk)
		}
		pend.res.X = x
	}

	if st.ts != nil {
		pend.res.InnerSweeps += st.ts.totalSweeps
		pend.res.InnerFlops += st.ts.innerFlops
		pend.res.TwoStageFallbacks += st.ts.fallbacks
	}
	pend.res.FactorFlops += st.factFlops
	if ad != nil {
		pend.res.ResplitFlops += ad.flops
	}
	pend.finishRank(c, st.ctx, st.iter, factTime, converged)
	return nil
}
