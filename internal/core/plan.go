package core

import (
	"repro/internal/mp"
	"repro/internal/plan"
	"repro/internal/sparse"
)

// buildCommPlan builds the shared communication plan for the decomposition
// mapped cyclically onto nranks processes (rank r owns bands r, r+P, r+2P…;
// with one band per rank the map is the identity). Both the single-band
// engine and the multiband driver consume the same plan, so the segment
// construction lives in exactly one place (internal/plan).
func buildCommPlan(a *sparse.CSR, d *Decomposition, nranks int) (*plan.Plan, error) {
	bands := make([]plan.Band, d.L())
	for i, b := range d.Bands {
		bands[i] = plan.Band{Start: b.Start, End: b.End, Lo: b.Lo, Hi: b.Hi}
	}
	return plan.Build(a, plan.Spec{
		N:                d.N,
		Bands:            bands,
		NRanks:           nranks,
		Owner:            func(b int) int { return b % nranks },
		Contributors:     d.Contributors,
		ContributorsInto: d.ContributorsInto,
		Weight:           d.Weight,
	})
}

// rankClusters returns each rank's cluster index, or nil when the platform
// declares no clusters for the communicator's hosts (flat topology: the
// gateway and the two-level collectives fall back to the direct plan).
func rankClusters(c *mp.Comm) []int {
	out := make([]int, c.Size())
	any := false
	for r := range out {
		out[r] = c.PeerHost(r).ClusterIndex()
		if out[r] >= 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}
