package splu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func TestSolveTranspose(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Seed: 9})
	at := a.Transpose()
	bt, xtrue := gen.RHSForSolution(at) // bt = Aᵀ·xtrue
	var c vec.Counter
	f, err := (&SparseLU{}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	f.(*sparseFactors).SolveT(x, bt, &c)
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
}

func TestSolveTransposeAliasing(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 50, Seed: 10})
	at := a.Transpose()
	bt, xtrue := gen.RHSForSolution(at)
	var c vec.Counter
	f, err := (&SparseLU{}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	buf := vec.Clone(bt)
	f.(*sparseFactors).SolveT(buf, buf, &c) // in-place
	for i := range buf {
		if math.Abs(buf[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("in-place SolveT wrong at %d", i)
		}
	}
}

func TestNorm1(t *testing.T) {
	co := sparse.NewCOO(2, 2)
	co.Append(0, 0, 3)
	co.Append(1, 0, -4)
	co.Append(1, 1, 2)
	if got := Norm1(co.ToCSR()); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
}

// exactCond1 computes κ₁ exactly by solving against all unit vectors.
func exactCond1(t *testing.T, a *sparse.CSR) float64 {
	t.Helper()
	var c vec.Counter
	f, err := (&SparseLU{}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	e := make([]float64, n)
	col := make([]float64, n)
	invNorm := 0.0
	for j := 0; j < n; j++ {
		e[j] = 1
		f.Solve(col, e, &c)
		e[j] = 0
		s := 0.0
		for _, v := range col {
			s += math.Abs(v)
		}
		if s > invNorm {
			invNorm = s
		}
	}
	return Norm1(a) * invNorm
}

func TestCondEst1MatchesExactOrder(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 80, Seed: 11})
	var c vec.Counter
	f, err := (&SparseLU{}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	est := CondEst1(a, f, &c)
	exact := exactCond1(t, a)
	// Hager's estimator is a lower bound, typically within a small factor.
	if est > exact*1.000001 {
		t.Fatalf("estimate %v exceeds exact %v", est, exact)
	}
	if est < exact/10 {
		t.Fatalf("estimate %v far below exact %v", est, exact)
	}
}

func TestCondEst1IllConditioned(t *testing.T) {
	// A nearly singular tridiagonal: condition number must be large.
	a := gen.Tridiag(100, -1, 2.0001, -1)
	var c vec.Counter
	f, err := (&SparseLU{}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	est := CondEst1(a, f, &c)
	if est < 1e3 {
		t.Fatalf("near-singular estimate %v suspiciously small", est)
	}
	// A well-conditioned diagonal-ish matrix for contrast.
	w := gen.DiagDominant(gen.DiagDominantOpts{N: 100, Margin: 3, Seed: 12})
	fw, err := (&SparseLU{}).Factor(w, &c)
	if err != nil {
		t.Fatal(err)
	}
	if ew := CondEst1(w, fw, &c); ew > est {
		t.Fatalf("well-conditioned estimate %v above ill-conditioned %v", ew, est)
	}
}

func TestSolveRefinedImprovesAccuracy(t *testing.T) {
	// A badly scaled system solved with a sloppy pivot threshold; iterative
	// refinement must reduce the residual.
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 300, Seed: 14})
	for i := 0; i < a.Rows; i += 2 {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			a.Val[p] *= 1e8
		}
	}
	b, _ := gen.RHSForSolution(a)
	var c vec.Counter
	f, err := (&SparseLU{PivotTol: 0.01}).Factor(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	resid := func(x []float64) float64 {
		y := make([]float64, a.Rows)
		a.MulVec(y, x, &c)
		worst := 0.0
		for i := range y {
			if d := math.Abs(y[i] - b[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	x0 := make([]float64, a.Rows)
	f.Solve(x0, b, &c)
	x2 := make([]float64, a.Rows)
	SolveRefined(a, f, x2, b, 2, &c)
	if resid(x2) > resid(x0) {
		t.Fatalf("refinement worsened residual: %v -> %v", resid(x0), resid(x2))
	}
	if resid(x2) > 1e-3*(1+resid(x0)) && resid(x2) > 1e-6*norm1b(b) {
		t.Fatalf("refined residual still large: %v", resid(x2))
	}
}

func norm1b(b []float64) float64 {
	m := 0.0
	for _, v := range b {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Property: the estimator never exceeds the exact condition number (it is a
// lower bound by construction) and stays within a reasonable factor.
func TestCondEst1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := gen.RandomDominant(n, 3, 0.4, rng)
		var c vec.Counter
		fct, err := (&SparseLU{}).Factor(a, &c)
		if err != nil {
			return true // singular draws are out of scope
		}
		est := CondEst1(a, fct, &c)
		exact := exactCond1(t, a)
		return est <= exact*1.000001 && est >= exact/20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
