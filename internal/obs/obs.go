// Package obs is the virtual-time observability layer of the simulated grid:
// a span/metric recorder fed from the simulator's scheduler commit points and
// from the solver drivers, with exporters for Chrome trace-event JSON
// (Perfetto / chrome://tracing), utilization and convergence metrics
// (JSON/CSV) and a critical-path profiler that decomposes the end-to-end
// makespan into compute, network and wait time.
//
// Everything is measured on the virtual clock, never the wall clock, so the
// recorded data inherits the simulator's determinism contract: a run with
// observability enabled produces byte-identical exports for any worker-thread
// count. Two rules make that hold:
//
//   - Emission points are serialized. Spans and samples are only emitted
//     while the emitting goroutine is the unique runner (a process between
//     resume and yield, or the scheduler between picks), so the per-track
//     emission order is the process's own program order.
//   - Exports sort. The one cross-track ordering that may differ between
//     worker counts — when a deferred compute segment's charge is collected —
//     is erased by sorting every export on (Start, Track, per-track index), a
//     total order independent of the global emission interleaving.
//
// With no recorder attached the instrumented code paths cost one nil check.
package obs

import "sort"

// Span categories. Host-level categories (compute, send, wait, sleep, mark)
// tile each process's track without overlap; net spans live on the shared
// network track and may overlap (they are exported as async events); solver
// categories (fact, refact, iter, phase, retry, detect) live on per-rank
// "solver:" tracks overlaying the host timeline.
const (
	// CatCompute is a charged compute segment on a process track.
	CatCompute = "compute"
	// CatSend is the sender-side occupancy of a message (queueing + push).
	CatSend = "send"
	// CatNet is a message transfer in flight (wire start to arrival).
	CatNet = "net"
	// CatWait is a blocked receive (block instant to resume instant).
	CatWait = "wait"
	// CatSleep is a virtual-time sleep (includes retry backoff).
	CatSleep = "sleep"
	// CatMark is an instantaneous platform event (host crash/restart).
	CatMark = "mark"
	// CatFact is a band factorization phase.
	CatFact = "fact"
	// CatRefact is a numeric refactorization through a frozen pattern.
	CatRefact = "refact"
	// CatIter is one solver iteration (compute + ship + exchange).
	CatIter = "iter"
	// CatInner is one two-stage inner relaxation stage (the scheduled
	// preconditioned sweeps inside an outer iteration).
	CatInner = "inner"
	// CatPhase is a coarse driver phase (e.g. dslu forward/backward solve).
	CatPhase = "phase"
	// CatRetry is a retransmission backoff window.
	CatRetry = "retry"
	// CatDetect is a convergence-detector event (verification wave, refresh).
	CatDetect = "detect"
)

// Span is one interval (or instant, Start == End) of virtual time on a named
// track, with the attributes the exporters and the critical-path profiler
// need. Zero-valued attributes mean "not applicable" and are omitted from
// exports.
type Span struct {
	// Track names the timeline row: a process name, "net", a link name, or a
	// "solver:<rank>" overlay.
	Track string
	// Cat is the span category (one of the Cat* constants).
	Cat string
	// Name is the display label.
	Name string
	// Start is the span's first instant in virtual seconds.
	Start float64
	// End is the span's last instant in virtual seconds (== Start for
	// instantaneous events).
	End float64
	// Flops is the arithmetic work charged inside the span.
	Flops float64
	// Bytes is the wire size for send/net spans.
	Bytes int64
	// From is the sending process for net spans and the source of the
	// delivered message for wait spans.
	From string
	// To is the destination process for send/net spans.
	To string
	// Link names the route (link names joined by '+') for net spans.
	Link string
	// Tag is the application message tag for send/net/wait spans.
	Tag int
	// Iter is the solver iteration number for iteration-scoped spans.
	Iter int
	// Seq is the per-sender message sequence number for net spans (the
	// sender's process ID packed in the high bits, its send counter in the
	// low bits) — unique across the run and stable for any lane or worker
	// count.
	Seq int64
	// Cause is the sequence number of the message whose arrival ended a wait
	// span (0 when the wait ended without a delivery, e.g. a timeout).
	Cause int64
	// Queue is the link-queueing delay inside a send/net span.
	Queue float64
	// Note carries free-form detail (e.g. the drop reason of a lost message).
	Note string

	idx int64 // per-recorder emission index (per-track order witness)
}

// SamplePoint is one metric observation: a named series on a track at a
// virtual instant.
type SamplePoint struct {
	// Series is the metric name (e.g. "residual", "diff").
	Series string
	// Track is the emitting rank or resource.
	Track string
	// T is the virtual time of the observation.
	T float64
	// V is the observed value.
	V float64

	idx int64
}

// CounterTotal is the final value of a named accumulator on a track.
type CounterTotal struct {
	// Name is the counter name (e.g. "retries", "link_bytes").
	Name string
	// Track is the counted rank or resource.
	Track string
	// Value is the accumulated total.
	Value float64
}

type countKey struct {
	name, track string
}

// spanChunk is the fixed capacity of one span-storage chunk. Chunked
// storage keeps recording an amortized-one-append operation without the
// doubling reallocation-and-copy of a flat slice — on a 1000-host run the
// recorder holds millions of spans, and repeatedly copying them was one of
// the per-iteration allocation storms the event-core refactor removes.
const spanChunk = 4096

// Recorder collects spans, samples and counters from an engine run. The zero
// value is ready to use; a nil *Recorder is a valid no-op sink (every method
// checks). A Recorder must only be fed from serialized emission points (see
// the package comment); it is not otherwise goroutine-safe.
type Recorder struct {
	// spans is chunked: every chunk but the last holds exactly spanChunk
	// entries, so recording never moves previously stored spans.
	spans   [][]Span
	nSpans  int
	samples []SamplePoint
	counts  map[countKey]float64
	nextIdx int64
	journal *journalLog
	// stream, when non-nil, receives every span instead of chunked storage
	// (bounded-memory streaming mode; see stream.go); trackSeq assigns the
	// per-track emission sequence the stream's deterministic flush order
	// ties on.
	stream   *Streamer
	trackSeq map[string]int64
}

// SetStream switches the recorder into streaming mode: spans are handed to
// the streamer's flight-recorder ring instead of being retained, and
// Recorder.Advance watermarks from the engine's commit points drive the
// incremental flush. Samples and counters are still retained (they are tiny
// and the aggregate metrics need them); Spans() returns nothing, so the
// batch exporters and the critical-path walk are unavailable on a streaming
// recorder. Must be called before recording starts; panics on a journal
// recorder (a sharded engine's lanes journal as usual — the stream attaches
// to the destination recorder the merge replays into).
func (r *Recorder) SetStream(st *Streamer) {
	if r.journal != nil {
		panic("obs: SetStream on a journal recorder")
	}
	if r.nSpans > 0 {
		panic("obs: SetStream after recording started")
	}
	r.stream = st
	st.rec = r
}

// Streaming reports whether the recorder is in streaming mode (false for
// nil).
func (r *Recorder) Streaming() bool { return r != nil && r.stream != nil }

// Advance tells a streaming recorder that the engine's commit time reached
// t: every pending span that ended strictly before t is final (commit keys
// are non-decreasing and spans never end before the commit that emits them)
// and is flushed to the trace writer. A no-op on nil or non-streaming
// recorders, so the engine can call it unconditionally from its serialized
// commit points.
func (r *Recorder) Advance(t float64) {
	if r == nil || r.stream == nil {
		return
	}
	r.stream.advance(t)
}

// countOp is one journaled Count call. Counter accumulation is a float sum,
// so replay must re-apply the additions in merged order rather than merging
// per-journal totals — float addition is not associative.
type countOp struct {
	name, track string
	v           float64
}

// journalLog stores a recorder's emissions as an ordered operation log
// instead of final storage: kinds is the per-operation type tape ('s' span,
// 'p' sample, 'c' count) and the three side arrays hold the payloads in
// emission order.
type journalLog struct {
	kinds   []byte
	spans   []Span
	samples []SamplePoint
	counts  []countOp
}

// NewJournal returns a recorder in journal mode: every Span/Sample/Count
// call is appended to an ordered operation log instead of final storage, to
// be replayed later into a destination recorder via NewReplayer. A sharded
// engine gives each scheduler lane a journal recorder and replays the lanes'
// logs in merged commit order, so the destination recorder's emission
// indices — and therefore every export — match a single-lane run exactly.
func NewJournal() *Recorder {
	return &Recorder{journal: &journalLog{}}
}

// NumOps returns how many operations the journal holds (0 for nil or a
// non-journal recorder). Lane schedulers snapshot this at commit points to
// delimit each commit's operation range.
func (r *Recorder) NumOps() int {
	if r == nil || r.journal == nil {
		return 0
	}
	return len(r.journal.kinds)
}

// Replayer replays a journal recorder's operation log into a destination
// recorder, preserving the journal's internal order. Cursors only move
// forward: ReplayTo(n) applies operations [cursor, n) exactly once.
type Replayer struct {
	j   *journalLog
	dst *Recorder
	op  int // cursor into j.kinds
	sp  int // cursor into j.spans
	sa  int // cursor into j.samples
	co  int // cursor into j.counts
}

// NewReplayer returns a replayer that feeds this journal recorder's log into
// dst. Panics if the recorder is not in journal mode.
func (r *Recorder) NewReplayer(dst *Recorder) *Replayer {
	if r == nil || r.journal == nil {
		panic("obs: NewReplayer on a non-journal recorder")
	}
	return &Replayer{j: r.journal, dst: dst}
}

// ReplayTo applies journal operations up to (but not including) index n into
// the destination recorder. Calls with n at or below the cursor are no-ops.
func (rp *Replayer) ReplayTo(n int) {
	for ; rp.op < n; rp.op++ {
		switch rp.j.kinds[rp.op] {
		case 's':
			rp.dst.Span(rp.j.spans[rp.sp])
			rp.sp++
		case 'p':
			s := rp.j.samples[rp.sa]
			rp.dst.Sample(s.Series, s.Track, s.T, s.V)
			rp.sa++
		default:
			c := rp.j.counts[rp.co]
			rp.dst.Count(c.name, c.track, c.v)
			rp.co++
		}
	}
}

// Span records one span. Zero-duration spans with no cause and no flops are
// kept too (instantaneous marks); the caller decides what is worth emitting.
func (r *Recorder) Span(s Span) {
	if r == nil {
		return
	}
	if j := r.journal; j != nil {
		j.kinds = append(j.kinds, 's')
		j.spans = append(j.spans, s)
		return
	}
	if st := r.stream; st != nil {
		if r.trackSeq == nil {
			r.trackSeq = map[string]int64{}
		}
		s.idx = r.trackSeq[s.Track]
		r.trackSeq[s.Track]++
		r.nSpans++
		st.push(s)
		return
	}
	s.idx = r.nextIdx
	r.nextIdx++
	if n := len(r.spans); n == 0 || len(r.spans[n-1]) == spanChunk {
		r.spans = append(r.spans, make([]Span, 0, spanChunk))
	}
	last := len(r.spans) - 1
	r.spans[last] = append(r.spans[last], s)
	r.nSpans++
}

// NumSpans returns how many spans have been recorded (0 for nil).
func (r *Recorder) NumSpans() int {
	if r == nil {
		return 0
	}
	return r.nSpans
}

// Sample records one metric observation.
func (r *Recorder) Sample(series, track string, t, v float64) {
	if r == nil {
		return
	}
	if j := r.journal; j != nil {
		j.kinds = append(j.kinds, 'p')
		j.samples = append(j.samples, SamplePoint{Series: series, Track: track, T: t, V: v})
		return
	}
	r.samples = append(r.samples, SamplePoint{Series: series, Track: track, T: t, V: v, idx: r.nextIdx})
	r.nextIdx++
}

// Count adds n to the named accumulator on the track.
func (r *Recorder) Count(name, track string, n float64) {
	if r == nil {
		return
	}
	if j := r.journal; j != nil {
		j.kinds = append(j.kinds, 'c')
		j.counts = append(j.counts, countOp{name: name, track: track, v: n})
		return
	}
	if r.counts == nil {
		r.counts = map[countKey]float64{}
	}
	r.counts[countKey{name, track}] += n
}

// Enabled reports whether the recorder actually collects (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Spans returns every recorded span sorted by (Start, Track, emission
// index) — the deterministic export order (see the package comment).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.nSpans)
	for _, chunk := range r.spans {
		out = append(out, chunk...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.idx < b.idx
	})
	return out
}

// Samples returns every recorded observation sorted by (Series, Track, T,
// emission index).
func (r *Recorder) Samples() []SamplePoint {
	if r == nil {
		return nil
	}
	out := make([]SamplePoint, len(r.samples))
	copy(out, r.samples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Series != b.Series {
			return a.Series < b.Series
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.T != b.T {
			return a.T < b.T
		}
		return a.idx < b.idx
	})
	return out
}

// Counters returns the accumulator totals sorted by (Name, Track).
func (r *Recorder) Counters() []CounterTotal {
	if r == nil {
		return nil
	}
	out := make([]CounterTotal, 0, len(r.counts))
	for k, v := range r.counts {
		out = append(out, CounterTotal{Name: k.name, Track: k.track, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// Scope is a per-process emitting handle: a recorder plus the process's
// identity, threaded through the solver drivers beside their counter and
// tracer (simctx.Ctx.Obs). A nil *Scope is a valid no-op. Spans emitted
// through a scope default to the process's "solver:<name>" overlay track, so
// driver-level phases never collide with the simulator's host-level spans;
// samples and counters carry the plain process name.
type Scope struct {
	rec  *Recorder
	name string
}

// NewScope returns an emitting handle for the named process, or nil when the
// recorder is nil (observability off).
func NewScope(rec *Recorder, name string) *Scope {
	if rec == nil {
		return nil
	}
	return &Scope{rec: rec, name: name}
}

// Enabled reports whether the scope actually emits (false for nil).
func (sc *Scope) Enabled() bool { return sc != nil }

// Span records a span, placing it on the scope's "solver:<name>" track when
// the span names no track of its own.
func (sc *Scope) Span(s Span) {
	if sc == nil {
		return
	}
	if s.Track == "" {
		s.Track = "solver:" + sc.name
	}
	sc.rec.Span(s)
}

// Sample records a metric observation on the scope's process track.
func (sc *Scope) Sample(series string, t, v float64) {
	if sc == nil {
		return
	}
	sc.rec.Sample(series, sc.name, t, v)
}

// Count adds n to the named accumulator on the scope's process track.
func (sc *Scope) Count(name string, n float64) {
	if sc == nil {
		return
	}
	sc.rec.Count(name, sc.name, n)
}
