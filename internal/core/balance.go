package core

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/vgrid"
)

// BalancedStarts partitions n unknowns across the hosts proportionally to
// their compute speed, so that on heterogeneous clusters (the paper's
// cluster2/cluster3) every processor's band solve costs roughly the same
// wall time per iteration. The returned starts slice feeds
// NewDecompositionFromStarts. Every band gets at least one row. The
// partitioning math itself lives in adapt.StartsFromWeights, shared with the
// online resplit controller (which feeds observed effective speeds instead
// of nameplate ones).
func BalancedStarts(n int, hosts []*vgrid.Host) ([]int, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: no hosts to balance over")
	}
	w := make([]float64, len(hosts))
	for i, h := range hosts {
		if h.Speed <= 0 {
			return nil, fmt.Errorf("core: host %s has non-positive speed", h.Name)
		}
		w[i] = h.Speed
	}
	starts, err := adapt.StartsFromWeights(n, w)
	if err != nil {
		return nil, fmt.Errorf("core: balance failed: %w", err)
	}
	return starts, nil
}
