package iterative

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/vec"
)

func TestGaussSeidelConverges(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Seed: 12})
	b, xtrue := gen.RHSForSolution(a)
	x := make([]float64, a.Rows)
	var c vec.Counter
	res, err := GaussSeidel(a, x, b, 1e-10, 10000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
	// Gauss–Seidel needs no more sweeps than Jacobi on a dominant matrix.
	xj := make([]float64, a.Rows)
	jac, err := Jacobi(a, xj, b, 1e-10, 10000, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > jac.Iterations {
		t.Fatalf("GS took %d sweeps, Jacobi %d", res.Iterations, jac.Iterations)
	}
}

func TestSORRelaxationHelps(t *testing.T) {
	// On the 1-D Laplacian, over-relaxation beats plain Gauss–Seidel.
	a := gen.Tridiag(100, -1, 2, -1)
	b, _ := gen.RHSForSolution(a)
	run := func(omega float64) int {
		x := make([]float64, a.Rows)
		var c vec.Counter
		res, err := SOR(a, x, b, omega, 1e-8, 100000, &c)
		if err != nil {
			t.Fatalf("omega %v: %v", omega, err)
		}
		return res.Iterations
	}
	gs := run(1.0)
	sor := run(1.9)
	if sor >= gs {
		t.Fatalf("SOR(1.9) %d sweeps not below GS %d", sor, gs)
	}
}

func TestSORInvalidOmega(t *testing.T) {
	a := gen.Tridiag(10, -1, 2, -1)
	x := make([]float64, 10)
	var c vec.Counter
	for _, w := range []float64{0, -0.5, 2, 2.5} {
		if _, err := SOR(a, x, make([]float64, 10), w, 1e-8, 10, &c); err == nil {
			t.Fatalf("omega %v accepted", w)
		}
	}
}

func TestSORZeroDiagonal(t *testing.T) {
	a := gen.Tridiag(10, -1, 2, -1)
	for p := a.RowPtr[3]; p < a.RowPtr[4]; p++ {
		if a.ColInd[p] == 3 {
			a.Val[p] = 0
		}
	}
	x := make([]float64, 10)
	var c vec.Counter
	if _, err := SOR(a, x, make([]float64, 10), 1, 1e-8, 10, &c); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestSORDivergenceDetected(t *testing.T) {
	a := gen.Tridiag(40, -3, 1, -3)
	b := make([]float64, 40)
	b[0] = 1
	x := make([]float64, 40)
	var c vec.Counter
	_, err := SOR(a, x, b, 1.0, 1e-10, 100000, &c)
	if err == nil || errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want explicit divergence", err)
	}
}
