package mmio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestReadCoordinateGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.5
2 2 -1
3 1 4
3 3 1e2
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 0) != 2.5 || m.At(2, 0) != 4 || m.At(2, 2) != 100 {
		t.Fatal("wrong entries")
	}
}

func TestReadCoordinateSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 3
2 1 5
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 || m.At(0, 0) != 3 {
		t.Fatal("symmetric expansion wrong")
	}
}

func TestReadCoordinateSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 4
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 4 || m.At(0, 1) != -4 {
		t.Fatal("skew expansion wrong")
	}
}

func TestReadCoordinatePattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 3
2 1
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 1 || m.At(1, 0) != 1 {
		t.Fatal("pattern entries wrong")
	}
}

func TestReadArrayGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix array real general
2 2
1
2
3
4
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: (0,0)=1 (1,0)=2 (0,1)=3 (1,1)=4.
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 1) != 4 {
		t.Fatal("array order wrong")
	}
}

func TestReadArraySymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix array real symmetric
2 2
1
7
4
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 0) != 7 || m.At(0, 1) != 7 || m.At(1, 1) != 4 {
		t.Fatal("symmetric array wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad banner":     "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"bad object":     "%%MatrixMarket vector coordinate real general\n1 1 1\n",
		"bad field":      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"missing size":   "%%MatrixMarket matrix coordinate real general\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"index range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 abc\n",
		"pattern array":  "%%MatrixMarket matrix array pattern general\n1 1\n1\n",
		"negative size":  "%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
		"short entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad row index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"bad col index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1\n",
		"bad array size": "%%MatrixMarket matrix array real general\nx y\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 50, Seed: 5})
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(a, back) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		co := sparse.NewCOO(rows, cols)
		for k := 0; k < rng.Intn(60); k++ {
			v := rng.NormFloat64()
			if v == 0 {
				v = 1
			}
			co.Append(rng.Intn(rows), rng.Intn(cols), v)
		}
		a := co.ToCSR()
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, a); err != nil {
			return false
		}
		back, err := ReadMatrix(&buf)
		if err != nil {
			return false
		}
		return sparse.Equal(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	a := gen.Tridiag(10, -1, 4, -1)
	if err := WriteMatrixFile(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(a, back) {
		t.Fatal("file round trip changed the matrix")
	}
	if _, err := ReadMatrixFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestVectorIO(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{1.5, -2, 3e-7}
	if err := WriteVector(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1.5 || got[1] != -2 || got[2] != 3e-7 {
		t.Fatalf("vector = %v", got)
	}
}

func TestReadVectorCommentsAndErrors(t *testing.T) {
	got, err := ReadVector(strings.NewReader("% c\n# c\n1 2\n3\n"))
	if err != nil || len(got) != 3 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ReadVector(strings.NewReader("1\nxyz\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}
