package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
)

// twoStageMatrix is the huge-matrix workload: a wide-band generated system
// whose per-band exact LU fill is an order of magnitude above the narrow
// band preconditioner, so the two solver modes sit on opposite sides of a
// realistic per-host memory budget. The width stays fixed while the
// dimension scales, preserving the fill ratio at every Scale.
func twoStageMatrix(cfg Config) *sparse.CSR {
	n := 64000 / cfg.scale()
	if n < 2800 {
		n = 2800 // keep each of cluster3's 10 bands wider than the coupling
	}
	return gen.DiagDominant(gen.DiagDominantOpts{
		N: n, Band: 220, PerRow: 10, Negative: true, Seed: 220,
	})
}

func (c Config) twoStage(inner int) core.TwoStage {
	return core.TwoStage{
		InnerIters:  inner,
		Schedule:    c.TwoStageSchedule,
		Omega:       c.TwoStageOmega,
		PrecondBand: c.TwoStagePrecondBand,
	}
}

// twoStageBudget sizes the memory-wall boundary from the decomposition
// itself: the largest band's working set plus its preconditioner fits, while
// even the smallest band's exact LU factor does not. The probe mirrors the
// engine's allocations (band submatrix, dependency columns, iterate
// vectors, factor bytes).
func twoStageBudget(a *sparse.CSR, hosts, width int) (int64, error) {
	d, err := core.NewDecomposition(a.Rows, hosts, 0, core.WeightOwner)
	if err != nil {
		return 0, err
	}
	var cnt vec.Counter
	minExact, maxPc, maxBase := int64(0), int64(0), int64(0)
	for _, band := range d.Bands {
		sub := a.Submatrix(band.Lo, band.Hi, band.Lo, band.Hi)
		fact, err := (&splu.SparseLU{}).Factor(sub, &cnt)
		if err != nil {
			return 0, err
		}
		pc, err := splu.NewBandPreconditioner(sub, width, &cnt)
		if err != nil {
			return 0, err
		}
		if minExact == 0 || fact.Bytes() < minExact {
			minExact = fact.Bytes()
		}
		if pc.Bytes() > maxPc {
			maxPc = pc.Bytes()
		}
		base := 2*(int64(sub.NNZ())*16+int64(len(sub.RowPtr))*8) + 16*int64(band.Size())
		if base > maxBase {
			maxBase = base
		}
	}
	if minExact <= 2*maxPc {
		return 0, fmt.Errorf("experiments: two-stage budget probe: exact fill %d bytes not clearly above preconditioner %d", minExact, maxPc)
	}
	return maxBase + maxPc + minExact/2, nil
}

// TwoStageTable reproduces the two-stage multisplitting study on cluster3:
// the nonstationary inner-sweep sweep (k = 1, 2, 4, 8, sync and async)
// against the exact-band baseline, then the memory wall — the same workload
// under a per-host budget where the direct solvers answer "nem" and only the
// two-stage mode completes.
func TwoStageTable(cfg Config) (*Table, error) {
	a := twoStageMatrix(cfg)
	b, _ := gen.RHSForSolution(a)
	width := cfg.twoStage(1).PrecondBand
	if width == 0 {
		width = 16 // core's default, mirrored for the budget probe
	}
	t := &Table{
		ID: "Table 5",
		Title: fmt.Sprintf("two-stage multisplitting on cluster3, generated wide-band matrix (n=%d, scale %d)",
			a.Rows, cfg.scale()),
		Header: []string{"inner k", "sync multisplitting", "async multisplitting",
			"outer iters (sync)", "inner sweeps (sync)"},
	}
	row := func(label string, o msOpts) (*core.Result, error) {
		cfg.logf("twostage: %s, sync", label)
		o.async = false
		sc, sres := runMS(cfg, cluster.Cluster3(-1), a, b, o)
		cfg.logf("twostage: %s, async", label)
		o.async = true
		ac, _ := runMS(cfg, cluster.Cluster3(-1), a, b, o)
		iters, sweeps := "-", "-"
		if sres != nil {
			iters = fmt.Sprintf("%d", sres.Iterations)
			if sres.InnerSweeps > 0 {
				sweeps = fmt.Sprintf("%d", sres.InnerSweeps)
			}
		}
		t.Rows = append(t.Rows, []string{label, sc.timeStr(), ac.timeStr(), iters, sweeps})
		return sres, nil
	}
	if _, err := row("exact", msOpts{}); err != nil {
		return nil, err
	}
	for _, k := range []int{1, 2, 4, 8} {
		if _, err := row(fmt.Sprintf("%d", k), msOpts{ts: cfg.twoStage(k)}); err != nil {
			return nil, err
		}
	}

	// The memory wall: budget the hosts between the preconditioner footprint
	// and the exact factor fill.
	budget, err := twoStageBudget(a, len(cluster.Cluster3(-1).Hosts), width)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("memory-wall rows: per-host budget %d bytes (self-calibrated between band-%d preconditioner and exact band LU fill)", budget, width))
	cfg.logf("twostage: memory wall, distributed SuperLU")
	dc := runDSLU(cluster.Cluster3(budget), a, b, true)
	cfg.logf("twostage: memory wall, exact multisplitting")
	ec, _ := runMS(cfg, cluster.Cluster3(budget), a, b, msOpts{track: true})
	cfg.logf("twostage: memory wall, two-stage multisplitting")
	tc, tres := runMS(cfg, cluster.Cluster3(budget), a, b, msOpts{track: true, ts: cfg.twoStage(4)})
	sweeps := "-"
	if tres != nil && tres.InnerSweeps > 0 {
		sweeps = fmt.Sprintf("%d", tres.InnerSweeps)
	}
	t.Rows = append(t.Rows,
		[]string{"wall: dslu", dc.timeStr(), "-", "-", "-"},
		[]string{"wall: exact", ec.timeStr(), "-", "-", "-"},
		[]string{"wall: k=4", tc.timeStr(), "-", "-", sweeps})
	return t, nil
}
