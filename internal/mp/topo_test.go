package mp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/vgrid"
)

// clusteredWorld builds two LAN sites (nA + nB hosts) joined by a shared WAN
// link, declares them as clusters, and runs body on every rank.
func clusteredWorld(t *testing.T, nA, nB int, body func(c *Comm) error) *vgrid.Engine {
	t.Helper()
	pl := vgrid.NewPlatform()
	n := nA + nB
	hosts := make([]*vgrid.Host, n)
	nics := make([]*vgrid.Link, n)
	for i := range hosts {
		hosts[i] = pl.AddHost(fmt.Sprintf("h%d", i), 1e9, 0)
		nics[i] = vgrid.NewLink(fmt.Sprintf("nic%d", i), 25e-6, 1.25e7)
	}
	wan := vgrid.NewLink("wan", 5e-3, 2.5e6)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (i < nA) == (j < nA) {
				pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
			} else {
				pl.SetRoute(hosts[i], hosts[j], nics[i], wan, nics[j])
			}
		}
	}
	pl.AddCluster("siteA", hosts[:nA]...)
	pl.AddCluster("siteB", hosts[nA:]...)
	e := vgrid.NewEngine(pl)
	Launch(e, hosts, "w", body)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTopoAllreduce(t *testing.T) {
	for _, op := range []Op{OpSum, OpMax, OpMin} {
		clusteredWorld(t, 3, 2, func(c *Comm) error {
			c.Topo = true
			v := float64(c.Rank() + 1)
			got, err := c.Allreduce(v, op)
			if err != nil {
				return err
			}
			want := map[Op]float64{OpSum: 15, OpMax: 5, OpMin: 1}[op]
			if got != want {
				return fmt.Errorf("rank %d: op %v = %v, want %v", c.Rank(), op, got, want)
			}
			return nil
		})
	}
}

func TestTopoBcast(t *testing.T) {
	// Roots covering every role: cluster leader (0), plain member (1), and
	// the second cluster's leader and member (3, 4).
	for _, root := range []int{0, 1, 3, 4} {
		clusteredWorld(t, 3, 2, func(c *Comm) error {
			c.Topo = true
			var data []float64
			if c.Rank() == root {
				data = []float64{float64(root), 42}
			}
			got, err := c.Bcast(root, data)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != float64(root) || got[1] != 42 {
				return fmt.Errorf("rank %d: bcast from %d gave %v", c.Rank(), root, got)
			}
			return nil
		})
	}
}

func TestTopoGather(t *testing.T) {
	for _, root := range []int{0, 1, 3, 4} {
		clusteredWorld(t, 3, 2, func(c *Comm) error {
			c.Topo = true
			data := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
			got, err := c.Gather(root, data)
			if err != nil {
				return err
			}
			if c.Rank() != root {
				if got != nil {
					return fmt.Errorf("rank %d: non-root gather returned %v", c.Rank(), got)
				}
				return nil
			}
			for r := 0; r < c.Size(); r++ {
				if len(got[r]) != 2 || got[r][0] != float64(r) || got[r][1] != float64(r*10) {
					return fmt.Errorf("root %d: slot %d = %v", root, r, got[r])
				}
			}
			return nil
		})
	}
}

func TestTopoBarrier(t *testing.T) {
	clusteredWorld(t, 3, 2, func(c *Comm) error {
		c.Topo = true
		return c.Barrier()
	})
}

// TestTopoFallsBackOnFlatPlatform: with no cluster declarations the Topo
// flag must be a no-op and the flat algorithms still produce the result.
func TestTopoFallsBackOnFlatPlatform(t *testing.T) {
	world(t, 4, func(c *Comm) error {
		c.Topo = true
		got, err := c.Allreduce(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if got != 6 {
			return fmt.Errorf("rank %d: sum = %v", c.Rank(), got)
		}
		return nil
	})
}

// TestTopoAllreduceCheaperOnWAN: the hierarchical reduction must cross the
// WAN fewer times than the flat star, which shows up directly as a shorter
// virtual completion time on a latency-dominated platform.
func TestTopoAllreduceCheaperOnWAN(t *testing.T) {
	run := func(topo bool) float64 {
		pl := vgrid.NewPlatform()
		const nA, nB = 4, 4
		n := nA + nB
		hosts := make([]*vgrid.Host, n)
		nics := make([]*vgrid.Link, n)
		for i := range hosts {
			hosts[i] = pl.AddHost(fmt.Sprintf("h%d", i), 1e9, 0)
			nics[i] = vgrid.NewLink(fmt.Sprintf("nic%d", i), 25e-6, 1.25e7)
		}
		wan := vgrid.NewLink("wan", 5e-3, 2.5e6)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (i < nA) == (j < nA) {
					pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
				} else {
					pl.SetRoute(hosts[i], hosts[j], nics[i], wan, nics[j])
				}
			}
		}
		pl.AddCluster("siteA", hosts[:nA]...)
		pl.AddCluster("siteB", hosts[nA:]...)
		e := vgrid.NewEngine(pl)
		Launch(e, hosts, "w", func(c *Comm) error {
			c.Topo = topo
			for i := 0; i < 10; i++ {
				if _, err := c.Allreduce(1, OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	flat, topo := run(false), run(true)
	if math.IsNaN(flat) || topo >= flat {
		t.Fatalf("hierarchical allreduce not faster: topo %v vs flat %v", topo, flat)
	}
}
