// Command benchjson runs `go test -bench` over a benchmark selection and
// rewrites the textual output as a JSON report: one record per benchmark with
// ns/op, B/op, allocs/op and any custom metrics keyed by unit. The per-phase
// solver units (factor-flops, refactor-flops, inner-flops, inner-sweeps,
// bytes-moved, wait-share) are
// lifted into a structured "breakdown" object. It exists so CI can archive
// machine-readable benchmark baselines (make bench-json →
// BENCH_refactor.json) without depending on external benchmark-parsing
// tooling.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-pkg ./...] [-o out.json]
//
// With -o "" the report goes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Record is one benchmark result line in JSON form.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	BytesOp    *float64           `json:"bytes_per_op,omitempty"`
	Breakdown  *Breakdown         `json:"breakdown,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Breakdown is the per-phase solver breakdown, lifted out of the generic
// metric map when a benchmark reports the recognized units (factor-flops,
// refactor-flops, the two-stage split inner-flops/inner-sweeps, bytes-moved,
// wait-share, the cluster traffic split
// intra-bytes/inter-bytes/intra-msgs/inter-msgs, the event-core scale pair
// sim-events/sim-wall-clock, and the scheduler-synchronization pair
// sim-commits/sim-syncs the sharded-core benchmarks report).
type Breakdown struct {
	FactorFlops   *float64 `json:"factor_flops,omitempty"`
	RefactorFlops *float64 `json:"refactor_flops,omitempty"`
	BytesMoved    *float64 `json:"bytes_moved,omitempty"`
	WaitShare     *float64 `json:"wait_share,omitempty"`
	InnerFlops    *float64 `json:"inner_flops,omitempty"`
	InnerSweeps   *float64 `json:"inner_sweeps,omitempty"`
	IntraBytes    *float64 `json:"intra_cluster_bytes,omitempty"`
	InterBytes    *float64 `json:"inter_cluster_bytes,omitempty"`
	IntraMsgs     *float64 `json:"intra_cluster_msgs,omitempty"`
	InterMsgs     *float64 `json:"inter_cluster_msgs,omitempty"`
	SimEvents     *float64 `json:"sim_events,omitempty"`
	SimWallClock  *float64 `json:"sim_wall_clock_ms,omitempty"`
	SimCommits    *float64 `json:"sim_commits,omitempty"`
	SimSyncs      *float64 `json:"sim_syncs,omitempty"`
}

// breakdownSlot returns the Breakdown field a metric unit lifts into, or nil
// for generic metrics; the Breakdown is allocated on the first recognized
// unit.
func (r *Record) breakdownSlot(unit string) **float64 {
	switch unit {
	case "factor-flops", "refactor-flops", "bytes-moved", "wait-share",
		"inner-flops", "inner-sweeps",
		"intra-bytes", "inter-bytes", "intra-msgs", "inter-msgs",
		"sim-events", "sim-wall-clock", "sim-commits", "sim-syncs":
	default:
		return nil
	}
	if r.Breakdown == nil {
		r.Breakdown = &Breakdown{}
	}
	switch unit {
	case "factor-flops":
		return &r.Breakdown.FactorFlops
	case "refactor-flops":
		return &r.Breakdown.RefactorFlops
	case "bytes-moved":
		return &r.Breakdown.BytesMoved
	case "inner-flops":
		return &r.Breakdown.InnerFlops
	case "inner-sweeps":
		return &r.Breakdown.InnerSweeps
	case "intra-bytes":
		return &r.Breakdown.IntraBytes
	case "inter-bytes":
		return &r.Breakdown.InterBytes
	case "intra-msgs":
		return &r.Breakdown.IntraMsgs
	case "inter-msgs":
		return &r.Breakdown.InterMsgs
	case "sim-events":
		return &r.Breakdown.SimEvents
	case "sim-wall-clock":
		return &r.Breakdown.SimWallClock
	case "sim-commits":
		return &r.Breakdown.SimCommits
	case "sim-syncs":
		return &r.Breakdown.SimSyncs
	default:
		return &r.Breakdown.WaitShare
	}
}

// Report is the top-level JSON document.
type Report struct {
	Package    string   `json:"package,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
	benchtime := flag.String("benchtime", "", "benchmark duration or iteration count (go test -benchtime)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("o", "", "output file (empty = stdout)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}

	rep, err := Parse(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}

// Parse converts `go test -bench` textual output into a Report. Lines it
// does not recognize are ignored; a benchmark line has the shape
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   42 extra-unit
//
// where every trailing "<value> <unit>" pair past the iteration count is a
// metric keyed by its unit.
func Parse(text string) (*Report, error) {
	rep := &Report{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... --- SKIP" line
		}
		r := Record{Name: trimProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesOp = &v
			case "allocs/op":
				r.AllocsOp = &v
			default:
				if slot := r.breakdownSlot(unit); slot != nil {
					vv := v
					*slot = &vv
					continue
				}
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to the
// benchmark name.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
