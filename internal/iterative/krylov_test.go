package iterative

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func TestCGOnPoisson(t *testing.T) {
	a := gen.Poisson2D(20, 20)
	b, xtrue := gen.RHSForSolution(a)
	x := make([]float64, a.Rows)
	var c vec.Counter
	res, err := CG(a, x, b, 1e-10, 5000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
	// CG on an SPD n-dim system converges in at most n steps; on Poisson
	// far fewer.
	if res.Iterations >= a.Rows {
		t.Fatalf("CG took %d iterations on n=%d", res.Iterations, a.Rows)
	}
}

func TestCGNonSPDBreaksDown(t *testing.T) {
	// Indefinite matrix: pᵀAp goes non-positive.
	co := sparse.NewCOO(2, 2)
	co.Append(0, 0, 1)
	co.Append(1, 1, -1)
	x := make([]float64, 2)
	var c vec.Counter
	if _, err := CG(co.ToCSR(), x, []float64{1, 1}, 1e-10, 100, &c); err == nil {
		t.Fatal("indefinite matrix accepted by CG")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := gen.Poisson2D(5, 5)
	x := make([]float64, a.Rows)
	var c vec.Counter
	res, err := CG(a, x, make([]float64, a.Rows), 1e-12, 100, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("zero rhs took %d iterations", res.Iterations)
	}
}

func TestBiCGSTABOnNonsymmetric(t *testing.T) {
	a := gen.CageLike(400, 8)
	b, xtrue := gen.RHSForSolution(a)
	x := make([]float64, a.Rows)
	var c vec.Counter
	res, err := BiCGSTAB(a, x, b, 1e-12, 5000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestBiCGSTABOnDominant(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 500, Seed: 13})
	b, xtrue := gen.RHSForSolution(a)
	x := make([]float64, a.Rows)
	var c vec.Counter
	if _, err := BiCGSTAB(a, x, b, 1e-12, 5000, &c); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] wrong", i)
		}
	}
}

func TestKrylovCap(t *testing.T) {
	a := gen.Poisson2D(15, 15)
	b, _ := gen.RHSForSolution(a)
	x := make([]float64, a.Rows)
	var c vec.Counter
	if _, err := CG(a, x, b, 1e-14, 2, &c); err == nil {
		t.Fatal("capped CG reported convergence")
	}
	x2 := make([]float64, a.Rows)
	if _, err := BiCGSTAB(a, x2, b, 1e-14, 1, &c); err == nil {
		t.Fatal("capped BiCGSTAB reported convergence")
	}
}
