// Hot-path buffer pools: payload float slices (by power-of-two size class)
// and delivered message envelopes. The iterative solvers send thousands of
// messages per solve, and before pooling every one of them allocated a
// payload copy in mp.SendFloats, a Message envelope in SendFate and a
// Packet on receive — the ~36k allocs/op storm BenchmarkTopologyExchange
// measured. The pools recycle all three.
//
// Ownership protocol:
//
//   - GetFloats hands out a buffer owned by the caller; passing it as a Send
//     payload transfers ownership to the receiver along with the message.
//   - The receiver (or the engine, for undelivered sends) returns the buffer
//     with PutFloats once the payload has been copied out or fully consumed.
//   - ReleaseMessage returns a delivered envelope after the payload has been
//     extracted (mp does this when converting to a Packet).
//   - Returning a buffer is always optional: an unreturned buffer is simply
//     collected by the GC, so code that lets payloads escape (Gather results
//     handed to the caller, stashed packets) just skips the Put.
//
// No locking: every pool operation happens at a serialized point — inside
// the unique running process or on the scheduler goroutine between commits —
// and the channel handoffs that pass control establish the happens-before
// edges. ComputeFunc/ComputeDeferred segments run concurrently with the
// scheduler and therefore must not touch the pools (the same rule that bars
// them from all simulator primitives).

package vgrid

import "math/bits"

// maxPoolClass bounds the pooled size classes: slices up to 2^maxPoolClass
// floats (128 MiB) are recycled, larger ones go to the GC.
const maxPoolClass = 24

// sizeClass returns the smallest power-of-two exponent c with n ≤ 1<<c.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// GetFloats returns a length-n float slice with power-of-two capacity from
// the engine's payload pool (allocating if the pool is empty). The caller
// owns the buffer until it passes it as a Send payload or returns it with
// PutFloats. Must be called from simulator context (the process body or the
// scheduler), never from a ComputeFunc segment.
func (p *Proc) GetFloats(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	free := &p.eng.floatFree[c]
	if k := len(*free); k > 0 {
		buf := (*free)[k-1]
		(*free)[k-1] = nil
		*free = (*free)[:k-1]
		return buf[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutFloats returns a buffer obtained from GetFloats to the payload pool.
// The caller must not touch the slice afterwards. Buffers whose capacity is
// not an exact power of two (not pool-born) are silently dropped to the GC,
// so Put is safe on any float slice.
func (p *Proc) PutFloats(buf []float64) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1
	if cl > maxPoolClass {
		return
	}
	e := p.eng
	e.floatFree[cl] = append(e.floatFree[cl], buf[:c])
}

// getMessage returns a zeroed-or-recycled message envelope.
func (e *Engine) getMessage() *Message {
	if k := len(e.msgFree); k > 0 {
		m := e.msgFree[k-1]
		e.msgFree[k-1] = nil
		e.msgFree = e.msgFree[:k-1]
		return m
	}
	return &Message{}
}

// ReleaseMessage returns a delivered message envelope to the engine's pool
// after its payload has been extracted. The caller must not touch the
// message afterwards; releasing is optional (an unreleased envelope is
// GC'd). Must be called from simulator context, and only once per message.
func (p *Proc) ReleaseMessage(m *Message) {
	*m = Message{}
	p.eng.msgFree = append(p.eng.msgFree, m)
}
