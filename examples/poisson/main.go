// Poisson: solve the 2-D Poisson equation −Δu = f on a square grid — the
// paper's Section 5 model problem class (an irreducibly diagonally dominant
// M-matrix) — across the two distant simulated clusters of the paper's
// cluster3, comparing the synchronous and asynchronous multisplitting-LU
// variants and the effect of Schwarz overlap.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/vec"
)

func main() {
	const nx, ny = 120, 120
	a := gen.Poisson2D(nx, ny)
	n := a.Rows

	// Manufactured solution u(x,y) = sin(πx)sin(πy) on the unit square.
	xtrue := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			x := float64(i+1) / float64(nx+1)
			y := float64(j+1) / float64(ny+1)
			xtrue[i*ny+j] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	b := make([]float64, n)
	var c vec.Counter
	a.MulVec(b, xtrue, &c)

	fmt.Printf("2-D Poisson, %dx%d grid (n=%d, nnz=%d) on cluster3 (7+3 machines, 20 Mb inter-site)\n",
		nx, ny, n, a.NNZ())

	type runCfg struct {
		name    string
		async   bool
		overlap int
	}
	for _, rc := range []runCfg{
		{"synchronous, no overlap", false, 0},
		{"synchronous, overlap 60", false, 60},
		{"asynchronous, no overlap", true, 0},
		{"asynchronous, overlap 60", true, 60},
	} {
		plt := cluster.Cluster3(-1)
		res, err := core.Solve(plt.Platform, plt.Hosts, a, b, core.Options{
			Tol:     1e-8,
			Async:   rc.async,
			Overlap: rc.overlap,
			Scheme:  core.WeightOwner,
		})
		if err != nil {
			log.Fatalf("%s: %v", rc.name, err)
		}
		worst := 0.0
		for i := range res.X {
			if d := math.Abs(res.X[i] - xtrue[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("  %-26s %8.3f virtual s, %5d iterations, error %.2e\n",
			rc.name, res.Time, res.Iterations, worst)
	}
	fmt.Println("overlap buys iterations; asynchrony hides the inter-site latency.")
}
