GO ?= go

.PHONY: all build test race vet bench bench-json bench-json-smoke lint-docs verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The worker pool runs compute segments on real OS threads, so the race
# detector is part of the verified loop, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable baseline of the refactorization economy: the Newton
# factor-vs-refactor comparison (factor-flops metric) plus the engine worker
# scaling, as JSON.
bench-json:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkNewtonRefactor|BenchmarkSessionIterate|BenchmarkEngineWorkers' -o BENCH_refactor.json

# One-iteration smoke of the same pipeline, part of verify: proves the
# benchmarks still run and the parser still understands their output.
bench-json-smoke:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkNewtonRefactor|BenchmarkSessionIterate' -benchtime 1x -o BENCH_refactor.json

# Fails on any exported identifier of the simulator or the solver core that
# lacks a doc comment.
lint-docs:
	$(GO) run ./cmd/lintdocs internal/vgrid internal/core

verify: build vet lint-docs test race bench-json-smoke
