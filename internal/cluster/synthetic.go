// Synthetic grid platforms beyond the paper's three hand-built testbeds:
// the cluster-level wrapper around vgrid.Synthetic, so commands and
// experiments can ask for "1000 hosts in 100 clusters" the same way they ask
// for cluster3.

package cluster

import "repro/internal/vgrid"

// Synthetic builds a generated grid platform (see vgrid.Synthetic): hosts
// compute hosts split into clusters contiguous LAN islands joined by one
// shared WAN backbone. heterogeneity spreads host speeds by ±heterogeneity
// around the base rate (0 = homogeneous); the same (hosts, clusters,
// heterogeneity, seed) always yields the identical platform. Memory is
// unlimited — the generator targets scheduling-scale studies, not the
// paper's memory-boundary tables.
//
// WAN is the shared backbone link when the grid spans more than one cluster
// (nil for a single LAN island), so FairWAN and Perturb work exactly as on
// cluster3.
func Synthetic(hosts, clusters int, heterogeneity float64, seed int64) *Platform {
	pl := vgrid.Synthetic(hosts, clusters, heterogeneity, seed)
	p := &Platform{Platform: pl, Hosts: pl.Hosts, SiteOf: make([]int, hosts)}
	for i, h := range pl.Hosts {
		p.SiteOf[i] = h.ClusterIndex()
	}
	if clusters > 1 {
		// The generator routes lazily; materialize one inter-cluster route to
		// surface the shared backbone (its middle link).
		var remote *vgrid.Host
		for i, h := range pl.Hosts {
			if p.SiteOf[i] != p.SiteOf[0] {
				remote = h
				break
			}
		}
		route, err := pl.Route(pl.Hosts[0], remote)
		if err != nil || len(route) != 3 {
			panic("cluster: synthetic inter-cluster route should have 3 links (uplink, wan, uplink)")
		}
		p.WAN = route[1]
	}
	return p
}
