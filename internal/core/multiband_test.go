package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/splu"
	"repro/internal/vec"
)

func TestMultibandSyncMatchesSequential(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 400, Seed: 70})
	b, xtrue := gen.RHSForSolution(a)
	// 3 ranks × 2 bands each must iterate exactly like the sequential
	// 6-band fixed point.
	pl, hosts := lanPlatform(3, 0)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-10, BandsPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-7)
	d, _ := NewDecomposition(a.Rows, 6, 0, WeightOwner)
	var c vec.Counter
	seq, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 100000, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != seq.Iterations {
		t.Fatalf("multiband %d iterations, sequential 6-band %d", res.Iterations, seq.Iterations)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-seq.X[i]) > 1e-12*(1+math.Abs(seq.X[i])) {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestMultibandWithOverlap(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 360, Margin: 0.1, Seed: 71})
	b, xtrue := gen.RHSForSolution(a)
	pl, hosts := lanPlatform(3, 0)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-9, BandsPerProc: 3, Overlap: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-6)
}

func TestMultibandAsync(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 400, Seed: 72})
	b, xtrue := gen.RHSForSolution(a)
	pl, hosts := lanPlatform(4, 0)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-9, BandsPerProc: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-6)
	if !res.Converged {
		t.Fatal("not converged")
	}
}

func TestMultibandAsyncDistant(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 600, Seed: 73})
	b, xtrue := gen.RHSForSolution(a)
	pl, hosts := twoSitePlatform(2, 2)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-9, BandsPerProc: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-6)
}

func TestMultibandAverageWeights(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 300, Seed: 74})
	b, xtrue := gen.RHSForSolution(a)
	pl, hosts := lanPlatform(3, 0)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-9, BandsPerProc: 2, Overlap: 10, Scheme: WeightAverage})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-6)
}

func TestMultibandIncompatibleOptions(t *testing.T) {
	a := gen.Tridiag(40, -1, 4, -1)
	b := make([]float64, 40)
	pl, hosts := lanPlatform(2, 0)
	for _, opt := range []Options{
		{BandsPerProc: 2, Balance: true},
		{BandsPerProc: 2, MaxStale: 3, Async: true},
		{BandsPerProc: 2, UseResidual: true},
	} {
		if _, err := Solve(pl, hosts, a, b, opt); err == nil {
			t.Fatalf("incompatible options accepted: %+v", opt)
		}
	}
}

func TestMultibandSingleRankManyBands(t *testing.T) {
	// All bands on one rank: fully local exchange.
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Seed: 75})
	b, xtrue := gen.RHSForSolution(a)
	pl, hosts := lanPlatform(1, 0)
	res, err := Solve(pl, hosts, a, b, Options{Tol: 1e-10, BandsPerProc: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, res, xtrue, 1e-7)
	if res.MsgsSent > 5 {
		// Only the final gather (none: rank 0 keeps it) plus collectives.
		t.Logf("note: %d messages on a single rank", res.MsgsSent)
	}
}
