package mmio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestParseHBFormat(t *testing.T) {
	cases := map[string]hbFormat{
		"(16I5)":       {16, 5},
		"(8I10)":       {8, 10},
		"(4E20.12)":    {4, 20},
		"(1P4E20.12)":  {4, 20},
		"(1P,4E20.12)": {4, 20},
		"(10F8.2)":     {10, 8},
		"(E15.8)":      {1, 15},
		" (3D25.16) ":  {3, 25},
	}
	for in, want := range cases {
		got, err := parseHBFormat(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Fatalf("%q: got %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "()", "(ZZ)", "(I)"} {
		if _, err := parseHBFormat(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// A hand-written RUA file: the 3x3 matrix [[1,0,2],[0,3,0],[4,0,5]] in CSC.
const sampleRUA = `Sample matrix                                                           KEY
             5             1             1             2             0
RUA                         3             3             5             0
(6I5)           (6I5)           (3E20.12)
    1    3    4    6
    1    3    2    1    3
  1.000000000000E+00  4.000000000000E+00  3.000000000000E+00
  2.000000000000E+00  5.000000000000E+00
`

func TestReadHBSample(t *testing.T) {
	m, err := ReadHB(strings.NewReader(sampleRUA))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 5 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	want := [][]float64{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestReadHBSymmetric(t *testing.T) {
	in := `Symmetric sample                                                        KEY
             3             1             1             1             0
RSA                         2             2             2             0
(6I5)           (6I5)           (3E20.12)
    1    3    3
    1    2
  4.000000000000E+00  7.000000000000E+00
`
	m, err := ReadHB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 7 || m.At(1, 0) != 7 || m.At(0, 0) != 4 {
		t.Fatal("symmetric expansion wrong")
	}
}

func TestReadHBPattern(t *testing.T) {
	in := `Pattern sample                                                          KEY
             2             1             1             0             0
PUA                         2             2             2             0
(6I5)           (6I5)           (3E20.12)
    1    2    3
    2    1
`
	m, err := ReadHB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 1 || m.At(0, 1) != 1 {
		t.Fatal("pattern entries wrong")
	}
}

func TestReadHBDExponent(t *testing.T) {
	in := `D exponent                                                              KEY
             3             1             1             1             0
RUA                         1             1             1             0
(6I5)           (6I5)           (1D20.12)
    1    2
    1
  1.500000000000D+02
`
	m, err := ReadHB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 150 {
		t.Fatalf("D-exponent value = %v", m.At(0, 0))
	}
}

func TestReadHBErrors(t *testing.T) {
	cases := map[string]string{
		"empty": "",
		"unassembled": `t                                                                       K
 1 1 1 1
RUE  2 2 2 0
(6I5) (6I5) (3E20.12)
`,
		"complex": `t                                                                       K
 1 1 1 1
CUA  2 2 2 0
(6I5) (6I5) (3E20.12)
`,
		"bad type len": `t                                                                       K
 1 1 1 1
R  2 2 2 0
(6I5) (6I5) (3E20.12)
`,
		"truncated pointers": `t                                                                       K
 1 1 1 1 0
RUA  2 2 2 0
(6I5)           (6I5)           (3E20.12)
    1    2
`,
	}
	for name, in := range cases {
		if _, err := ReadHB(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestHBRoundTrip(t *testing.T) {
	a := gen.CageLike(80, 3)
	var buf bytes.Buffer
	if err := WriteHB(&buf, a, "cage-like test matrix", "CAGE80"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != back.Rows || a.NNZ() != back.NNZ() {
		t.Fatalf("shape changed: %v -> %v", a, back)
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			got := back.At(i, a.ColInd[p])
			if d := got - a.Val[p]; d > 1e-11 || d < -1e-11 {
				t.Fatalf("(%d,%d) = %v, want %v", i, a.ColInd[p], got, a.Val[p])
			}
		}
	}
}

func TestHBRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(30)
		cols := 1 + rng.Intn(30)
		co := sparse.NewCOO(rows, cols)
		for k := 0; k < rng.Intn(80); k++ {
			v := rng.NormFloat64()
			if v == 0 {
				v = 1
			}
			co.Append(rng.Intn(rows), rng.Intn(cols), v)
		}
		a := co.ToCSR()
		var buf bytes.Buffer
		if err := WriteHB(&buf, a, "prop", "P"); err != nil {
			return false
		}
		back, err := ReadHB(&buf)
		if err != nil {
			return false
		}
		if back.Rows != rows || back.Cols != cols || back.NNZ() != a.NNZ() {
			return false
		}
		for i := 0; i < rows; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				d := back.At(i, a.ColInd[p]) - a.Val[p]
				if d > 1e-10 || d < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHBFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.rua")
	a := gen.Tridiag(12, -1, 4, -1)
	if err := WriteHBFile(path, a, "tridiagonal", "TRI12"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("file round trip changed nnz")
	}
	if _, err := ReadHBFile(filepath.Join(dir, "missing.rua")); err == nil {
		t.Fatal("missing file accepted")
	}
}
