package core

import (
	"fmt"

	"repro/internal/vgrid"
)

// BalancedStarts partitions n unknowns across the hosts proportionally to
// their compute speed, so that on heterogeneous clusters (the paper's
// cluster2/cluster3) every processor's band solve costs roughly the same
// wall time per iteration. The returned starts slice feeds
// NewDecompositionFromStarts. Every band gets at least one row.
func BalancedStarts(n int, hosts []*vgrid.Host) ([]int, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: no hosts to balance over")
	}
	if n < len(hosts) {
		return nil, fmt.Errorf("core: cannot split %d unknowns over %d hosts", n, len(hosts))
	}
	total := 0.0
	for _, h := range hosts {
		if h.Speed <= 0 {
			return nil, fmt.Errorf("core: host %s has non-positive speed", h.Name)
		}
		total += h.Speed
	}
	starts := make([]int, len(hosts)+1)
	acc := 0.0
	for i, h := range hosts {
		acc += h.Speed
		starts[i+1] = int(acc / total * float64(n))
	}
	starts[len(hosts)] = n
	// Enforce non-empty bands (tiny n or extreme ratios can collapse one).
	for i := 1; i <= len(hosts); i++ {
		if starts[i] <= starts[i-1] {
			starts[i] = starts[i-1] + 1
		}
	}
	if starts[len(hosts)] > n {
		return nil, fmt.Errorf("core: balance failed: %v exceeds %d", starts, n)
	}
	starts[len(hosts)] = n
	for i := len(hosts) - 1; i >= 1; i-- {
		if starts[i] >= starts[i+1] {
			starts[i] = starts[i+1] - 1
		}
	}
	if starts[0] != 0 || starts[1] <= 0 {
		return nil, fmt.Errorf("core: balance failed: %v", starts)
	}
	return starts, nil
}
