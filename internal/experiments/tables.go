package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/sparse"
)

// table1Procs are the processor counts of the paper's Table 1.
var table1Procs = []int{1, 2, 3, 4, 6, 8, 9, 12, 16, 20}

// table2Procs are the processor counts of the paper's Table 2 (fewer than 4
// processors run out of memory).
var table2Procs = []int{4, 6, 8, 9, 12, 16, 20}

const msHeader = "ms-header"

var compareHeader = []string{
	"procs", "distributed SuperLU", "sync multisplitting-LU",
	"async multisplitting-LU", "factorization time",
}

// scalabilityRow runs the three solvers on the first nprocs machines of
// cluster1 and formats one table row. memOverride as in cluster.Cluster1.
func scalabilityRow(cfg Config, a *sparse.CSR, b []float64, nprocs int, memOverride int64) []string {
	if nprocs == 1 {
		// One processor: the distributed solver degenerates to the
		// sequential direct method; multisplitting is not defined.
		cfg.logf("table: %d procs, sequential direct", nprocs)
		d := runDSLU(cluster.Cluster1(1, memOverride), a, b, memOverride != -1)
		return []string{"1", d.timeStr(), "-", "-", "-"}
	}
	cfg.logf("table: %d procs, distributed SuperLU", nprocs)
	d := runDSLU(cluster.Cluster1(nprocs, memOverride), a, b, memOverride != -1)
	cfg.logf("table: %d procs, sync multisplitting", nprocs)
	s, _ := runMS(cfg, cluster.Cluster1(nprocs, memOverride), a, b, msOpts{track: memOverride != -1})
	cfg.logf("table: %d procs, async multisplitting", nprocs)
	as, _ := runMS(cfg, cluster.Cluster1(nprocs, memOverride), a, b, msOpts{async: true, track: memOverride != -1})
	fact := "-"
	if s.ok {
		fact = fmtSec(s.fact)
	}
	return []string{fmt.Sprint(nprocs), d.timeStr(), s.timeStr(), as.timeStr(), fact}
}

// Table1 reproduces the paper's Table 1: scalability of distributed SuperLU
// versus multisplitting-LU on cluster1 with the cage10 matrix.
func Table1(cfg Config) (*Table, error) {
	a := Cage10Like(cfg)
	b, _ := gen.RHSForSolution(a)
	t := &Table{
		ID:     "Table 1",
		Title:  fmt.Sprintf("cluster1 scalability, cage10-like matrix (n=%d, scale %d)", a.Rows, cfg.scale()),
		Header: compareHeader,
	}
	for _, p := range table1Procs {
		t.Rows = append(t.Rows, scalabilityRow(cfg, a, b, p, -1))
	}
	return t, nil
}

// Table2 reproduces the paper's Table 2: the cage11 matrix on cluster1.
// Below 4 processors the problem does not fit in memory ("nem"); the memory
// budget is self-calibrated from the 4-processor fill so that the paper's
// boundary is reproduced at every scale.
func Table2(cfg Config) (*Table, error) {
	a := Cage11Like(cfg)
	b, _ := gen.RHSForSolution(a)
	// Probe the factor fill at 4 processors to size the per-host memory.
	cfg.logf("table2: probing 4-processor fill")
	fill, err := probeFill(cluster.Cluster1(4, -1), a, b)
	if err != nil {
		return nil, err
	}
	budget := fill / 4 * 24 * 3 / 2 // per-rank entries × bytes × 1.5 headroom
	t := &Table{
		ID:     "Table 2",
		Title:  fmt.Sprintf("cluster1 scalability, cage11-like matrix (n=%d, scale %d)", a.Rows, cfg.scale()),
		Header: compareHeader,
		Notes: []string{
			fmt.Sprintf("per-host memory budget %d bytes (self-calibrated: fits at 4+ processors)", budget),
		},
	}
	// The sub-4-processor row demonstrates the paper's "nem" boundary.
	t.Rows = append(t.Rows, scalabilityRow(cfg, a, b, 2, budget))
	for _, p := range table2Procs {
		t.Rows = append(t.Rows, scalabilityRow(cfg, a, b, p, budget))
	}
	return t, nil
}

// Table3 reproduces the paper's Table 3: the three solvers on the local
// heterogeneous cluster (cage11) and the distant two-site cluster (cage12,
// where distributed SuperLU runs out of memory, and the 500000 generated
// matrix).
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table 3",
		Title:  fmt.Sprintf("distant/heterogeneous clusters (scale %d)", cfg.scale()),
		Header: append([]string{"matrix", "cluster"}, compareHeader[1:]...),
	}
	addRow := func(name, cl string, a *sparse.CSR, mem int64, newPlat func(int64) *cluster.Platform) {
		b, _ := gen.RHSForSolution(a)
		cfg.logf("table3: %s on %s, distributed SuperLU", name, cl)
		d := runDSLU(newPlat(mem), a, b, mem != -1)
		cfg.logf("table3: %s on %s, sync multisplitting", name, cl)
		s, _ := runMS(cfg, newPlat(mem), a, b, msOpts{track: mem != -1})
		cfg.logf("table3: %s on %s, async multisplitting", name, cl)
		as, _ := runMS(cfg, newPlat(mem), a, b, msOpts{async: true, track: mem != -1})
		fact := "-"
		if s.ok {
			fact = fmtSec(s.fact)
		}
		t.Rows = append(t.Rows, []string{name, cl, d.timeStr(), s.timeStr(), as.timeStr(), fact})
	}

	cage11 := Cage11Like(cfg)
	addRow("cage11", "cluster2", cage11, -1, func(m int64) *cluster.Platform { return cluster.Cluster2(m) })

	// cage12 on cluster3: the distributed solver's aggregate fill exceeds
	// the hosts' memory while the per-band multisplitting factors fit. The
	// budget is extrapolated from the cage11 fill ratio.
	cage12 := Cage12Like(cfg)
	fill11, err := probeFill(cluster.Cluster2(-1), cage11, mustRHS(cage11))
	if err != nil {
		return nil, err
	}
	ratio := float64(fill11) / (float64(cage11.Rows) * float64(cage11.Rows))
	fill12 := int64(ratio * float64(cage12.Rows) * float64(cage12.Rows))
	budget := fill12 * 24 / 10 * 3 / 10 // 30% of the per-rank need: dslu cannot fit
	t.Notes = append(t.Notes,
		fmt.Sprintf("cage12 per-host budget %d bytes (30%% of the distributed solver's per-rank fill)", budget))
	addRow("cage12", "cluster3", cage12, budget, func(m int64) *cluster.Platform { return cluster.Cluster3(m) })

	g := Gen500k(cfg)
	addRow(fmt.Sprintf("%d matrix", 500000/cfg.scale()), "cluster3", g, -1,
		func(m int64) *cluster.Platform { return cluster.Cluster3(m) })
	return t, nil
}

// Table4 reproduces the paper's Table 4: the impact of perturbing
// communications on the 500000 generated matrix over cluster3.
func Table4(cfg Config) (*Table, error) {
	a := Gen500k(cfg)
	b, _ := gen.RHSForSolution(a)
	t := &Table{
		ID:    "Table 4",
		Title: fmt.Sprintf("network perturbation on cluster3, %d generated matrix (scale %d)", 500000/cfg.scale(), cfg.scale()),
		Header: []string{
			"perturbing flows", "distributed SuperLU", "sync multisplitting-LU", "async multisplitting-LU",
		},
	}
	for _, flows := range []int{0, 1, 5, 10} {
		cfg.logf("table4: %d flows, distributed SuperLU", flows)
		d := runDSLUPerturbed(cfg, cluster.Cluster3(-1), a, b, flows)
		cfg.logf("table4: %d flows, sync multisplitting", flows)
		s, _ := runMS(cfg, cluster.Cluster3(-1), a, b, msOpts{flows: flows})
		cfg.logf("table4: %d flows, async multisplitting", flows)
		as, _ := runMS(cfg, cluster.Cluster3(-1), a, b, msOpts{async: true, flows: flows})
		t.Rows = append(t.Rows, []string{fmt.Sprint(flows), d.timeStr(), s.timeStr(), as.timeStr()})
	}
	return t, nil
}

// Table4Fair is the Table 4 scenario with TCP-like fair sharing on the
// inter-site link instead of FIFO serialization — closer to how the paper's
// perturbing flows shared the real Internet path, and correspondingly
// gentler slowdowns (an extension, not a paper table).
func Table4Fair(cfg Config) (*Table, error) {
	a := Gen500k(cfg)
	b, _ := gen.RHSForSolution(a)
	t := &Table{
		ID:    "Table 4 (fair-sharing variant)",
		Title: fmt.Sprintf("perturbation with TCP-like WAN sharing, %d generated matrix (scale %d)", 500000/cfg.scale(), cfg.scale()),
		Header: []string{
			"perturbing flows", "distributed SuperLU", "sync multisplitting-LU", "async multisplitting-LU",
		},
		Notes: []string{"extension: the paper's WAN contention was TCP-fair, our default model is FIFO"},
	}
	for _, flows := range []int{0, 1, 5, 10} {
		cfg.logf("table4fair: %d flows, distributed SuperLU", flows)
		d := runDSLUPerturbed(cfg, cluster.Cluster3(-1).FairWAN(), a, b, flows)
		cfg.logf("table4fair: %d flows, sync multisplitting", flows)
		s, _ := runMS(cfg, cluster.Cluster3(-1).FairWAN(), a, b, msOpts{flows: flows})
		cfg.logf("table4fair: %d flows, async multisplitting", flows)
		as, _ := runMS(cfg, cluster.Cluster3(-1).FairWAN(), a, b, msOpts{async: true, flows: flows})
		t.Rows = append(t.Rows, []string{fmt.Sprint(flows), d.timeStr(), s.timeStr(), as.timeStr()})
	}
	return t, nil
}

// Figure3 reproduces the paper's Figure 3: the impact of the overlap size on
// the synchronous and asynchronous solve times, the factorization time and
// the synchronous iteration count (divided by 100, as in the paper's plot),
// on cluster3 with the 100000 generated matrix whose spectral radius is
// close to 1.
func Figure3(cfg Config) (*Table, error) {
	a := Gen100k(cfg)
	b, _ := gen.RHSForSolution(a)
	t := &Table{
		ID:    "Figure 3",
		Title: fmt.Sprintf("overlap sweep on cluster3, %d generated matrix (scale %d)", 100000/cfg.scale(), cfg.scale()),
		Header: []string{
			"overlap", "sync time", "async time", "factorization time", "sync iterations/100",
		},
	}
	speed := fig3SpeedScale(cfg)
	t.Notes = append(t.Notes,
		"overlap in paper units; scaled rows = 2*overlap/scale, host speed scaled by 40.96/scale^3 to preserve the paper's compute/communication balance")
	for ov := 0; ov <= 5000; ov += 500 {
		scaled := 2 * ov / cfg.scale()
		cfg.logf("figure3: overlap %d (scaled %d)", ov, scaled)
		s, sres := runMS(cfg, cluster.Cluster3(-1).ScaleSpeed(speed), a, b, msOpts{overlap: scaled})
		as, _ := runMS(cfg, cluster.Cluster3(-1).ScaleSpeed(speed), a, b, msOpts{async: true, overlap: scaled})
		iters := "-"
		fact := "-"
		if s.ok && sres != nil {
			iters = fmt.Sprintf("%.2f", float64(sres.Iterations)/100)
			fact = fmtSec(s.fact)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(ov), s.timeStr(), as.timeStr(), fact, iters})
	}
	return t, nil
}

// runDSLUPerturbed runs the distributed solver under background flows.
func runDSLUPerturbed(cfg Config, plt *cluster.Platform, a *sparse.CSR, b []float64, flows int) cell {
	if flows == 0 {
		return runDSLU(plt, a, b, false)
	}
	e := cfg.newEngine(plt)
	pend, err := dsluLaunch(e, plt, a, b)
	if err != nil {
		return cell{note: "err"}
	}
	plt.Perturb(e, flows, pend.Running)
	_, err = e.Run()
	pend.Finish()
	res := pend.Result()
	if err != nil {
		return cell{note: "err"}
	}
	if r := relResidual(a, res.X, b); r > residualGate {
		return cell{note: fmt.Sprintf("bad(%.0e)", r)}
	}
	return cell{time: res.Time, fact: res.FactorTime, ok: true}
}

func mustRHS(a *sparse.CSR) []float64 {
	b, _ := gen.RHSForSolution(a)
	return b
}

// ByName returns the experiment runner for an identifier ("table1".."table4",
// "figure3" / "fig3").
func ByName(name string) (func(Config) (*Table, error), error) {
	switch name {
	case "table1", "1":
		return Table1, nil
	case "table2", "2":
		return Table2, nil
	case "table3", "3":
		return Table3, nil
	case "table4", "4":
		return Table4, nil
	case "table4fair":
		return Table4Fair, nil
	case "figure3", "fig3":
		return Figure3, nil
	case "faultsweep", "faults":
		return FaultSweep, nil
	case "utilization", "util":
		return Utilization, nil
	case "windowed", "window":
		return WindowedUtilization, nil
	case "topology", "topo":
		return TopologyTable, nil
	case "clustergrid", "cluster-grid":
		return ClusterGrid, nil
	case "eventshard", "event-shard":
		return EventShard, nil
	case "twostage", "two-stage":
		return TwoStageTable, nil
	case "adaptive", "adapt":
		return Adaptive, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// All lists every experiment in paper order.
func All() []struct {
	Name string
	Run  func(Config) (*Table, error)
} {
	return []struct {
		Name string
		Run  func(Config) (*Table, error)
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"figure3", Figure3},
		{"faultsweep", FaultSweep},
		{"utilization", Utilization},
		{"windowed", WindowedUtilization},
		{"topology", TopologyTable},
		{"clustergrid", ClusterGrid},
		{"eventshard", EventShard},
		{"twostage", TwoStageTable},
		{"adaptive", Adaptive},
	}
}
