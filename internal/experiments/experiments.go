// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): the cluster1 scalability tables (1, 2), the
// distant heterogeneous cluster comparison (Table 3), the network
// perturbation study (Table 4) and the overlap sweep (Figure 3).
//
// Matrix sizes are divided by Config.Scale so a full regeneration runs in
// seconds to minutes; Scale 1 uses the paper's exact dimensions (feasible
// for the generated banded matrices, prohibitive for the near-dense
// cage-like factorizations — see EXPERIMENTS.md). Every solve is verified
// against a manufactured true solution; cells are marked when verification
// fails.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dslu"
	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/vec"
	"repro/internal/vgrid"
)

// Config controls an experiment run.
type Config struct {
	// Scale divides the paper's matrix dimensions (default 16).
	Scale int
	// Progress, when non-nil, receives per-run progress lines.
	Progress io.Writer
	// Workers bounds the worker-thread pool executing compute segments of
	// the simulated solver ranks; 0 keeps the engine default (GOMAXPROCS).
	// Results are identical for any value — only wall-clock time changes.
	Workers int
	// Lanes selects the engine's scheduler-lane count: 0 keeps the default
	// single lane, -1 requests auto-sharding (one lane per cluster), n ≥ 1
	// requests n lanes. Results are identical for any value — only
	// wall-clock time changes.
	Lanes int
	// FaultSeed seeds the deterministic fault injection of the fault-sweep
	// experiment; 0 selects a fixed default so results are reproducible
	// without configuration.
	FaultSeed int64
	// TraceJSON, when non-empty, makes observability-aware experiments (the
	// utilization table) write a Perfetto trace per run to
	// <TraceJSON>-<cluster>-<solver>.json.
	TraceJSON string
	// MetricsOut, when non-empty, writes per-run metrics to
	// <MetricsOut>-<cluster>-<solver>.metrics.{json,csv}.
	MetricsOut string
	// CriticalPath adds each run's top critical-path segments to the
	// utilization table's notes.
	CriticalPath bool
	// Window overrides the windowed-utilization experiment's virtual-time
	// window width in seconds (0 auto-sizes to 1/8 of the clean makespan).
	Window float64
	// StreamTrace makes the windowed-utilization experiment accumulate its
	// windows from the streaming flush path instead of the retained spans —
	// same numbers, exercising the bounded-memory feed.
	StreamTrace bool
	// SynthHosts, when positive, makes the cluster-grid experiment run on a
	// single generated grid of that many hosts instead of its default scale
	// sweep.
	SynthHosts int
	// SynthClusters is the cluster count of the SynthHosts grid (minimum 1).
	SynthClusters int
	// TwoStageSchedule overrides the inner-sweep schedule of the two-stage
	// experiment ("fixed", "ramp", "residual"; empty keeps the core default).
	TwoStageSchedule string
	// TwoStageOmega overrides the inner relaxation weight (0 keeps the core
	// default of 1).
	TwoStageOmega float64
	// TwoStagePrecondBand overrides the preconditioner half-bandwidth (0
	// keeps the core default of 16).
	TwoStagePrecondBand int
	// Adapt enables the live decomposition (online band resplits,
	// internal/adapt) in every synchronous multisplitting run of the paper
	// tables; the adaptive experiment always runs its adaptive leg.
	// Asynchronous runs ignore it — resplits need lockstep.
	Adapt bool
	// AdaptInterval overrides the iterations between controller epochs (0
	// keeps the per-experiment default).
	AdaptInterval int
	// AdaptHysteresis overrides the minimal relative band-size change an
	// accepted resplit must reach (0 keeps the per-experiment default).
	AdaptHysteresis float64
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 16
	}
	return c.Scale
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1 + 2*len(widths)
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(t.Header)))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (for plotting Figure 3).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// --- Workload matrices (paper Section 6, scaled).

// Cage10Like returns the cage10 stand-in (n = 11397/scale).
func Cage10Like(cfg Config) *sparse.CSR { return gen.CageLike(11397/cfg.scale(), 1010) }

// Cage11Like returns the cage11 stand-in (n = 39082/scale).
func Cage11Like(cfg Config) *sparse.CSR { return gen.CageLike(39082/cfg.scale(), 1011) }

// Cage12Like returns the cage12 stand-in (n = 130228/scale).
func Cage12Like(cfg Config) *sparse.CSR { return gen.CageLike(130228/cfg.scale(), 1012) }

// Gen500k returns the paper's generated diagonally dominant matrix of
// degree 500000 (scaled).
func Gen500k(cfg Config) *sparse.CSR {
	return gen.DiagDominant(gen.DiagDominantOpts{
		N: 500000 / cfg.scale(), Band: 12, PerRow: 7, Margin: 0.4, Seed: 500,
	})
}

// Gen100k returns the generated matrix of degree 100000 whose spectral
// radius is close to 1 (the Figure 3 matrix): wide local single-sign
// couplings and a tiny dominance margin put the band splittings in the
// Schwarz regime, where overlap meaningfully trades iteration count against
// factorization cost. The coupling width scales with the matrix so the
// overlap-to-band ratios (and hence iteration counts) are scale-invariant.
func Gen100k(cfg Config) *sparse.CSR {
	n := 100000 / cfg.scale()
	band := 960 / cfg.scale()
	if band < 4 {
		band = 4
	}
	return gen.DiagDominant(gen.DiagDominantOpts{
		N: n, Band: band, PerRow: 10, Margin: 0.002, Negative: true, Seed: 100,
	})
}

// fig3SpeedScale preserves the paper's compute-to-communication balance for
// the overlap sweep: per-band factorization work shrinks as scale³ (rows ×
// width²) while network latency is scale-free, so host speed shrinks by the
// same cube. At scale 16 this calibrates the factorization-time curve into
// the paper's 3–10 s range.
func fig3SpeedScale(cfg Config) float64 {
	s := float64(cfg.scale())
	return 40.96 / (s * s * s)
}

// --- Cell runners.

type cell struct {
	time float64
	fact float64
	ok   bool
	note string
}

func (c cell) timeStr() string {
	if !c.ok {
		return c.note
	}
	return fmtSec(c.time)
}

func fmtSec(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// relResidual returns ‖Ax − b‖∞ / ‖b‖∞.
func relResidual(a *sparse.CSR, x, b []float64) float64 {
	var c vec.Counter
	y := make([]float64, len(b))
	a.MulVec(y, x, &c)
	num, den := 0.0, 0.0
	for i := range y {
		if d := math.Abs(y[i] - b[i]); d > num {
			num = d
		}
		if d := math.Abs(b[i]); d > den {
			den = d
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}

// residualGate marks a cell bad when the solve did not actually solve.
const residualGate = 1e-4

// probeFill runs the distributed solver without memory limits and returns
// its total factor fill (used to self-calibrate the "nem" budgets).
func probeFill(plt *cluster.Platform, a *sparse.CSR, b []float64) (int64, error) {
	res, err := dslu.Solve(plt.Platform, plt.Hosts, a, b, dslu.Options{})
	if err != nil {
		return 0, fmt.Errorf("experiments: fill probe: %w", err)
	}
	return res.FillNNZ, nil
}

func (c Config) newEngine(plt *cluster.Platform) *vgrid.Engine {
	e := vgrid.NewEngine(plt.Platform)
	if c.Workers > 0 {
		e.SetWorkers(c.Workers)
	}
	if c.Lanes < 0 {
		e.SetLanes(0) // auto: one lane per cluster
	} else if c.Lanes >= 1 {
		e.SetLanes(c.Lanes)
	}
	return e
}

func dsluLaunch(e *vgrid.Engine, plt *cluster.Platform, a *sparse.CSR, b []float64) (*dslu.Pending, error) {
	return dslu.Launch(e, plt.Hosts, a, b, dslu.Options{})
}

func runDSLU(plt *cluster.Platform, a *sparse.CSR, b []float64, track bool) cell {
	res, err := dslu.Solve(plt.Platform, plt.Hosts, a, b, dslu.Options{TrackMemory: track})
	switch {
	case errors.Is(err, vgrid.ErrOutOfMemory):
		return cell{note: "nem"}
	case err != nil:
		return cell{note: "err"}
	}
	if r := relResidual(a, res.X, b); r > residualGate {
		return cell{note: fmt.Sprintf("bad(%.0e)", r)}
	}
	return cell{time: res.Time, fact: res.FactorTime, ok: true}
}

type msOpts struct {
	async   bool
	overlap int
	track   bool
	flows   int
	// topo routes the collectives through cluster leaders; gateway batches
	// the inter-cluster boundary exchange through per-cluster aggregators.
	topo    bool
	gateway bool
	// ts, when enabled, switches the inner solves to two-stage sweeps.
	ts core.TwoStage
}

func runMS(cfg Config, plt *cluster.Platform, a *sparse.CSR, b []float64, o msOpts) (cell, *core.Result) {
	e := cfg.newEngine(plt)
	co := core.Options{
		Async:           o.async,
		Overlap:         o.overlap,
		TrackMemory:     o.track,
		TopoCollectives: o.topo,
		Gateway:         o.gateway,
		TwoStage:        o.ts,
	}
	if cfg.Adapt && !o.async && o.ts.InnerIters == 0 {
		co.Adapt = true
		co.AdaptInterval = cfg.AdaptInterval
		co.AdaptHysteresis = cfg.AdaptHysteresis
	}
	pend, err := core.Launch(e, plt.Hosts, a, b, co)
	if err != nil {
		return cell{note: "err"}, nil
	}
	if o.flows > 0 {
		plt.Perturb(e, o.flows, pend.Running)
	}
	_, err = e.Run()
	pend.Finish()
	res := pend.Result()
	logResplits(cfg, res)
	switch {
	case errors.Is(err, vgrid.ErrOutOfMemory):
		return cell{note: "nem"}, res
	case err != nil:
		return cell{note: "err"}, res
	case !res.Converged:
		return cell{note: "div"}, res
	}
	if r := relResidual(a, res.X, b); r > residualGate {
		return cell{note: fmt.Sprintf("bad(%.0e)", r)}, res
	}
	return cell{time: res.Time, fact: res.FactorTime, ok: true}, res
}
