package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
)

// TestClusterGridRunSchedulersAgree checks the cluster-grid workload itself:
// the scan and indexed schedulers simulate the same ring to the same virtual
// makespan and event count.
func TestClusterGridRunSchedulersAgree(t *testing.T) {
	idx, err := ClusterGridRun(32, 4, 3000, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ClusterGridRun(32, 4, 3000, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx.VirtualTime != scan.VirtualTime {
		t.Errorf("virtual time: indexed %g, scan %g", idx.VirtualTime, scan.VirtualTime)
	}
	if idx.Events != scan.Events || idx.Events < 3000 {
		t.Errorf("events: indexed %d, scan %d (target 3000)", idx.Events, scan.Events)
	}
	if idx.VirtualTime <= 0 {
		t.Errorf("virtual time %g, want positive", idx.VirtualTime)
	}
}

// TestClusterGridTable runs the experiment on a single small override grid.
func TestClusterGridTable(t *testing.T) {
	tab, err := ClusterGrid(Config{SynthHosts: 16, SynthClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("override grid should produce one row, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "16" || tab.Rows[0][1] != "2" {
		t.Errorf("row head = %v, want the override grid size", tab.Rows[0][:2])
	}
	if !strings.HasSuffix(tab.Rows[0][5], "x") {
		t.Errorf("speedup cell %q not formatted as a ratio", tab.Rows[0][5])
	}
}

// TestSolveOnSyntheticGrid runs the full multisplitting solver (with the
// topology-aware plans engaged) on a generated multi-cluster platform — the
// path the msolve -hosts flag exercises.
func TestSolveOnSyntheticGrid(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 1200, Band: 12, PerRow: 7, Seed: 9})
	b, _ := gen.RHSForSolution(a)
	plt := cluster.Synthetic(12, 3, 0.3, 5)
	res, err := core.Solve(plt.Platform, plt.Hosts, a, b, core.Options{
		Tol: 1e-8, TopoCollectives: true, Gateway: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence on synthetic grid")
	}
	if r := relResidual(a, res.X, b); r > residualGate {
		t.Errorf("residual %g over gate %g", r, residualGate)
	}
	if res.InterBytes == 0 || res.IntraBytes == 0 {
		t.Errorf("cluster traffic split empty: intra %d, inter %d — clusters not declared?", res.IntraBytes, res.InterBytes)
	}
}
