package sparse

import (
	"fmt"

	"repro/internal/vec"
)

// Add returns alpha·A + beta·B for equally-shaped matrices.
func Add(alpha float64, a *CSR, beta float64, b *CSR, c *vec.Counter) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	co := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			co.Append(i, a.ColInd[p], alpha*a.Val[p])
		}
		for p := b.RowPtr[i]; p < b.RowPtr[i+1]; p++ {
			co.Append(i, b.ColInd[p], beta*b.Val[p])
		}
	}
	c.Add(float64(a.NNZ() + b.NNZ()))
	return co.ToCSR()
}

// Scale returns alpha·A as a new matrix.
func Scale(alpha float64, a *CSR, c *vec.Counter) *CSR {
	out := a.Clone()
	for i := range out.Val {
		out.Val[i] *= alpha
	}
	c.Add(float64(a.NNZ()))
	return out
}

// Mul returns the sparse matrix product A·B (Gustavson's row-by-row
// algorithm with a dense accumulator).
func Mul(a, b *CSR, c *vec.Counter) *CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul shape mismatch %dx%d times %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	rowPtr := make([]int, a.Rows+1)
	var colInd []int
	var val []float64
	acc := make([]float64, b.Cols)
	mark := make([]int, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	flops := 0.0
	for i := 0; i < a.Rows; i++ {
		var cols []int
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColInd[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColInd[q]
				if mark[j] != i {
					mark[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += av * b.Val[q]
				flops += 2
			}
		}
		sortInts(cols)
		for _, j := range cols {
			colInd = append(colInd, j)
			val = append(val, acc[j])
		}
		rowPtr[i+1] = len(val)
	}
	c.Add(flops)
	return &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: rowPtr, ColInd: colInd, Val: val}
}

// sortInts is a small insertion sort (rows are short and nearly sorted).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
