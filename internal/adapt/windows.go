// Bridging obs.WindowedMetrics into controller observations. The engine's
// online epochs measure busy/wait time directly on each rank's virtual clock
// (committed state, exchanged through ordinary messages — see
// internal/core), but the same quantities exist per window in the offline
// telemetry artifacts; this converter lets tools and tests replay controller
// decisions from a recorded .windows.json file.

package adapt

import "repro/internal/obs"

// FromWindows folds one window of a windowed-metrics report into controller
// observations: for each rank, Busy is the window's charged compute time and
// Wait is its wait+sleep time. trackRank maps a host-window track name to
// the rank index and its owned row count (return ok=false for tracks that
// are not solver ranks, e.g. background traffic processes). Ranks without a
// row in the window get a zero observation, which the controller treats as
// "no information" for the speed estimate. The aggregated windows do not
// separate nameplate from stretched compute time, so Nominal and Speed stay
// zero too — callers replaying rebalance decisions must fill them from the
// platform description.
func FromWindows(wm *obs.WindowedMetrics, window, ranks int, trackRank func(track string) (rank, rows int, ok bool)) []Observation {
	out := make([]Observation, ranks)
	for i := range out {
		out[i].Rank = i
	}
	for i := range wm.Hosts {
		h := &wm.Hosts[i]
		if h.W != window {
			continue
		}
		r, rows, ok := trackRank(h.Track)
		if !ok || r < 0 || r >= ranks {
			continue
		}
		out[r].Rows = rows
		out[r].Busy += h.Compute
		out[r].Wait += h.Wait + h.Sleep
	}
	return out
}
