package nonlinear

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
	"repro/internal/vgrid"
)

// cubicProblem builds A·x + x³ = b with a manufactured solution (the
// monotone nonlinearity class of the companion transport paper).
func cubicProblem(n int, seed int64) (*Problem, []float64) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: n, Seed: seed})
	xtrue := make([]float64, n)
	for i := range xtrue {
		xtrue[i] = 0.5 + 0.4*math.Sin(float64(i)*0.05)
	}
	b := make([]float64, n)
	var c vec.Counter
	a.MulVec(b, xtrue, &c)
	for i := range b {
		b[i] += xtrue[i] * xtrue[i] * xtrue[i]
	}
	return &Problem{
		A: a,
		Phi: Diagonal{
			Phi:  func(i int, v float64) float64 { return v * v * v },
			DPhi: func(i int, v float64) float64 { return 3 * v * v },
		},
		B: b,
	}, xtrue
}

func TestNewtonSequentialCubic(t *testing.T) {
	p, xtrue := cubicProblem(500, 1)
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10}, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	// Newton on a smooth monotone problem: a handful of outer steps.
	if res.NewtonIterations > 12 {
		t.Fatalf("Newton took %d iterations", res.NewtonIterations)
	}
	if res.InnerIterations <= res.NewtonIterations {
		t.Fatalf("inner iterations %d implausible", res.InnerIterations)
	}
}

func TestNewtonLinearProblemOneStep(t *testing.T) {
	// φ = 0: Newton must converge in one step (plus the residual check).
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Seed: 2})
	b, xtrue := gen.RHSForSolution(a)
	p := &Problem{
		A: a,
		Phi: Diagonal{
			Phi:  func(int, float64) float64 { return 0 },
			DPhi: func(int, float64) float64 { return 0 },
		},
		B: b,
	}
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-9}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIterations > 2 {
		t.Fatalf("linear problem took %d Newton steps", res.NewtonIterations)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7 {
			t.Fatal("wrong solution")
		}
	}
}

func TestNewtonQuadraticConvergence(t *testing.T) {
	// Residuals along the Newton path should collapse fast: starting from
	// zero, reaching 1e-10 within ~8 steps on this smooth problem.
	p, _ := cubicProblem(300, 3)
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIterations > 8 {
		t.Fatalf("convergence too slow: %d steps", res.NewtonIterations)
	}
	if res.Residual > 1e-10 {
		t.Fatalf("final residual %v", res.Residual)
	}
}

func TestNewtonMaxIterations(t *testing.T) {
	p, _ := cubicProblem(100, 4)
	var c vec.Counter
	_, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-14, MaxNewton: 1}, &c)
	if !errors.Is(err, ErrNewtonNoConvergence) {
		t.Fatalf("err = %v, want ErrNewtonNoConvergence", err)
	}
}

func TestNewtonDistributed(t *testing.T) {
	p, xtrue := cubicProblem(600, 5)
	newPlat := func() (*vgrid.Platform, []*vgrid.Host) {
		pl := vgrid.NewPlatform()
		var hosts []*vgrid.Host
		var nics []*vgrid.Link
		for i := 0; i < 4; i++ {
			hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
			nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
			}
		}
		return pl, hosts
	}
	res, err := SolveDistributed(newPlat, p, Options{
		NewtonTol: 1e-9,
		Inner:     core.Options{Tol: 1e-11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time accumulated")
	}
}

func TestNewtonDistributedAsyncInner(t *testing.T) {
	p, xtrue := cubicProblem(600, 6)
	newPlat := func() (*vgrid.Platform, []*vgrid.Host) {
		pl := vgrid.NewPlatform()
		var hosts []*vgrid.Host
		var nics []*vgrid.Link
		for i := 0; i < 3; i++ {
			hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
			nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
			}
		}
		return pl, hosts
	}
	res, err := SolveDistributed(newPlat, p, Options{
		NewtonTol: 1e-8,
		Inner:     core.Options{Tol: 1e-10, Async: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-5*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
}

func TestJacobianStructuralZeroDiagonal(t *testing.T) {
	// A has a structurally missing diagonal entry; the Jacobian must still
	// place φ' there.
	co := sparseNoDiag()
	p := &Problem{
		A: co,
		Phi: Diagonal{
			Phi:  func(i int, v float64) float64 { return 5 * v },
			DPhi: func(i int, v float64) float64 { return 5 },
		},
		B: []float64{1, 2},
	}
	var c vec.Counter
	j := p.Jacobian([]float64{0, 0}, &c)
	if j.At(0, 0) != 5 {
		t.Fatalf("J(0,0) = %v, want 5", j.At(0, 0))
	}
}

func TestResidualAtSolutionIsZero(t *testing.T) {
	p, xtrue := cubicProblem(50, 7)
	var c vec.Counter
	r := make([]float64, 50)
	if got := p.Residual(r, xtrue, &c); got > 1e-10 {
		t.Fatalf("residual at solution = %v", got)
	}
}

func sparseNoDiag() *sparse.CSR {
	co := sparse.NewCOO(2, 2)
	co.Append(0, 1, 1)
	co.Append(1, 0, 1)
	co.Append(1, 1, 4)
	return co.ToCSR()
}
