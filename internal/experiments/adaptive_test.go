package experiments

import "testing"

// TestAdaptiveShape pins the adaptive experiment's acceptance claims: the
// controller stays quiet on the clean grid, fires under the windowed host
// degradation, and the adaptive leg beats the static balanced split by at
// least 15% of the degraded makespan. Scale 16 (not the suite-wide 32): the
// resplit's refactorization is a fixed cost, so the win needs a run long
// enough to amortize it — exactly the regime the experiment documents.
func TestAdaptiveShape(t *testing.T) {
	tab, err := Adaptive(Config{Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// clean adaptive: converges, zero resplits — the speed-balanced split is
	// a fixed point of the controller on a healthy grid.
	r := tab.Rows[1]
	if r[0] != "clean" || r[1] != "adaptive" {
		t.Fatalf("row 1 is %q/%q, want clean/adaptive", r[0], r[1])
	}
	parse(t, r[2])
	if n := parse(t, r[4]); n != 0 {
		t.Fatalf("clean adaptive run resplit %v times, want 0", n)
	}
	// degraded adaptive: at least one resplit, accounted transition cost.
	ra := tab.Rows[3]
	if ra[0] != "degraded" || ra[1] != "adaptive" {
		t.Fatalf("row 3 is %q/%q, want degraded/adaptive", ra[0], ra[1])
	}
	if n := parse(t, ra[4]); n < 1 {
		t.Fatalf("degraded adaptive run resplit %v times, want >= 1", n)
	}
	if f := parse(t, ra[6]); f <= 0 {
		t.Fatalf("transition flops %v, want > 0", f)
	}
	// The acceptance bar: adaptive beats static by >= 15% makespan under the
	// windowed degradation.
	static := parse(t, tab.Rows[2][2])
	adaptive := parse(t, ra[2])
	if adaptive > 0.85*static {
		t.Fatalf("adaptive %v not >=15%% better than static %v", adaptive, static)
	}
}
