package nonlinear

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
	"repro/internal/vgrid"
)

// cubicProblem builds A·x + x³ = b with a manufactured solution (the
// monotone nonlinearity class of the companion transport paper).
func cubicProblem(n int, seed int64) (*Problem, []float64) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: n, Seed: seed})
	xtrue := make([]float64, n)
	for i := range xtrue {
		xtrue[i] = 0.5 + 0.4*math.Sin(float64(i)*0.05)
	}
	b := make([]float64, n)
	var c vec.Counter
	a.MulVec(b, xtrue, &c)
	for i := range b {
		b[i] += xtrue[i] * xtrue[i] * xtrue[i]
	}
	return &Problem{
		A: a,
		Phi: Diagonal{
			Phi:  func(i int, v float64) float64 { return v * v * v },
			DPhi: func(i int, v float64) float64 { return 3 * v * v },
		},
		B: b,
	}, xtrue
}

func TestNewtonSequentialCubic(t *testing.T) {
	p, xtrue := cubicProblem(500, 1)
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10}, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	// Newton on a smooth monotone problem: a handful of outer steps.
	if res.NewtonIterations > 12 {
		t.Fatalf("Newton took %d iterations", res.NewtonIterations)
	}
	if res.InnerIterations <= res.NewtonIterations {
		t.Fatalf("inner iterations %d implausible", res.InnerIterations)
	}
}

func TestNewtonLinearProblemOneStep(t *testing.T) {
	// φ = 0: Newton must converge in one step (plus the residual check).
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Seed: 2})
	b, xtrue := gen.RHSForSolution(a)
	p := &Problem{
		A: a,
		Phi: Diagonal{
			Phi:  func(int, float64) float64 { return 0 },
			DPhi: func(int, float64) float64 { return 0 },
		},
		B: b,
	}
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-9}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIterations > 2 {
		t.Fatalf("linear problem took %d Newton steps", res.NewtonIterations)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7 {
			t.Fatal("wrong solution")
		}
	}
}

func TestNewtonQuadraticConvergence(t *testing.T) {
	// Residuals along the Newton path should collapse fast: starting from
	// zero, reaching 1e-10 within ~8 steps on this smooth problem.
	p, _ := cubicProblem(300, 3)
	var c vec.Counter
	res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIterations > 8 {
		t.Fatalf("convergence too slow: %d steps", res.NewtonIterations)
	}
	if res.Residual > 1e-10 {
		t.Fatalf("final residual %v", res.Residual)
	}
}

func TestNewtonMaxIterations(t *testing.T) {
	p, _ := cubicProblem(100, 4)
	var c vec.Counter
	_, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-14, MaxNewton: 1}, &c)
	if !errors.Is(err, ErrNewtonNoConvergence) {
		t.Fatalf("err = %v, want ErrNewtonNoConvergence", err)
	}
}

func TestNewtonDistributed(t *testing.T) {
	p, xtrue := cubicProblem(600, 5)
	newPlat := func() (*vgrid.Platform, []*vgrid.Host) {
		pl := vgrid.NewPlatform()
		var hosts []*vgrid.Host
		var nics []*vgrid.Link
		for i := 0; i < 4; i++ {
			hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
			nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
			}
		}
		return pl, hosts
	}
	res, err := SolveDistributed(newPlat, p, Options{
		NewtonTol: 1e-9,
		Inner:     core.Options{Tol: 1e-11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time accumulated")
	}
}

func TestNewtonDistributedAsyncInner(t *testing.T) {
	p, xtrue := cubicProblem(600, 6)
	newPlat := func() (*vgrid.Platform, []*vgrid.Host) {
		pl := vgrid.NewPlatform()
		var hosts []*vgrid.Host
		var nics []*vgrid.Link
		for i := 0; i < 3; i++ {
			hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
			nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
		}
		for i := range hosts {
			for j := i + 1; j < len(hosts); j++ {
				pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
			}
		}
		return pl, hosts
	}
	res, err := SolveDistributed(newPlat, p, Options{
		NewtonTol: 1e-8,
		Inner:     core.Options{Tol: 1e-10, Async: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-5*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
}

func TestJacobianStructuralZeroDiagonal(t *testing.T) {
	// A has a structurally missing diagonal entry; the Jacobian must still
	// place φ' there.
	co := sparseNoDiag()
	p := &Problem{
		A: co,
		Phi: Diagonal{
			Phi:  func(i int, v float64) float64 { return 5 * v },
			DPhi: func(i int, v float64) float64 { return 5 },
		},
		B: []float64{1, 2},
	}
	var c vec.Counter
	j := p.Jacobian([]float64{0, 0}, &c)
	if j.At(0, 0) != 5 {
		t.Fatalf("J(0,0) = %v, want 5", j.At(0, 0))
	}
}

func TestResidualAtSolutionIsZero(t *testing.T) {
	p, xtrue := cubicProblem(50, 7)
	var c vec.Counter
	r := make([]float64, 50)
	if got := p.Residual(r, xtrue, &c); got > 1e-10 {
		t.Fatalf("residual at solution = %v", got)
	}
}

func sparseNoDiag() *sparse.CSR {
	co := sparse.NewCOO(2, 2)
	co.Append(0, 1, 1)
	co.Append(1, 0, 1)
	co.Append(1, 1, 4)
	return co.ToCSR()
}

// sparseCubicProblem is cubicProblem on a narrow-band sparse matrix — the
// regime (little fill, symbolic work a large share of factorization) where
// refactorization pays the most.
func sparseCubicProblem(n int, seed int64) (*Problem, []float64) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: n, Band: 8, PerRow: 3, Margin: 0.1, Negative: true, Seed: seed})
	xtrue := make([]float64, n)
	for i := range xtrue {
		xtrue[i] = 0.5 + 0.4*math.Sin(float64(i)*0.05)
	}
	b := make([]float64, n)
	var c vec.Counter
	a.MulVec(b, xtrue, &c)
	for i := range b {
		b[i] += xtrue[i] * xtrue[i] * xtrue[i]
	}
	return &Problem{
		A: a,
		Phi: Diagonal{
			Phi:  func(_ int, v float64) float64 { return v * v * v },
			DPhi: func(_ int, v float64) float64 { return 3 * v * v },
		},
		B: b,
	}, xtrue
}

// TestNewtonRefactorFlopReduction: across a multi-step Newton solve the
// persistent sessions must cut the total factorization flops at least in
// half relative to the per-step Factor baseline, without changing the
// solution or the outer path.
func TestNewtonRefactorFlopReduction(t *testing.T) {
	p, xtrue := sparseCubicProblem(600, 11)
	solver := &splu.SparseLU{PivotTol: 0.1}
	opt := Options{NewtonTol: 1e-12, Bands: 4}
	var c1, c2 vec.Counter
	res, err := SolveSequential(p, solver, opt, &c1)
	if err != nil {
		t.Fatal(err)
	}
	optBase := opt
	optBase.NoRefactor = true
	base, err := SolveSequential(p, solver, optBase, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIterations != base.NewtonIterations {
		t.Fatalf("outer path changed: %d vs %d Newton steps", res.NewtonIterations, base.NewtonIterations)
	}
	if res.NewtonIterations < 5 {
		t.Fatalf("too few Newton steps (%d) to exercise amortization", res.NewtonIterations)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	if res.FactorFlops <= 0 || base.FactorFlops <= 0 {
		t.Fatalf("FactorFlops not reported: session %v, baseline %v", res.FactorFlops, base.FactorFlops)
	}
	if 2*res.FactorFlops > base.FactorFlops {
		t.Fatalf("refactorization saved less than 2x: session %v, baseline %v (ratio %.2f)",
			res.FactorFlops, base.FactorFlops, base.FactorFlops/res.FactorFlops)
	}
}

// TestNewtonDistributedRefactorFlopReduction: the same economy through the
// distributed sessions on a simulated grid.
func TestNewtonDistributedRefactorFlopReduction(t *testing.T) {
	p, xtrue := sparseCubicProblem(400, 12)
	opt := Options{
		NewtonTol: 1e-12,
		Inner:     core.Options{Tol: 1e-10, Overlap: 8, Solver: &splu.SparseLU{PivotTol: 0.1}},
	}
	res, err := SolveDistributed(newLan4, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	optBase := opt
	optBase.NoRefactor = true
	base, err := SolveDistributed(newLan4, p, optBase)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	if 2*res.FactorFlops > base.FactorFlops {
		t.Fatalf("refactorization saved less than 2x: session %v, baseline %v (ratio %.2f)",
			res.FactorFlops, base.FactorFlops, base.FactorFlops/res.FactorFlops)
	}
	if res.Time >= base.Time {
		t.Fatalf("virtual time did not improve: session %v, baseline %v", res.Time, base.Time)
	}
}

// newLan4 builds a fresh 4-host LAN per call (sessions need a new platform
// for every inner Resolve).
func newLan4() (*vgrid.Platform, []*vgrid.Host) {
	pl := vgrid.NewPlatform()
	var hosts []*vgrid.Host
	var nics []*vgrid.Link
	for i := 0; i < 4; i++ {
		hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
		nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
	}
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
		}
	}
	return pl, hosts
}

// TestNewtonTwoStage runs Newton with two-stage inner multisplitting solves,
// sequentially and on the grid: the band preconditioners refresh through the
// frozen Jacobian pattern each Newton step, replacing every exact band
// factorization, and the solution still matches the manufactured one.
func TestNewtonTwoStage(t *testing.T) {
	inner := core.Options{
		Tol:      1e-11,
		TwoStage: core.TwoStage{InnerIters: 4, PrecondBand: 4},
	}

	t.Run("sequential", func(t *testing.T) {
		p, xtrue := cubicProblem(500, 1)
		var c vec.Counter
		res, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10, Inner: inner}, &c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.X {
			if math.Abs(res.X[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
				t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
			}
		}
		c = vec.Counter{}
		exact, err := SolveSequential(p, &splu.SparseLU{}, Options{NewtonTol: 1e-10}, &c)
		if err != nil {
			t.Fatal(err)
		}
		// Narrow band factors in place of exact LU: less factorization work.
		if res.FactorFlops >= exact.FactorFlops {
			t.Fatalf("two-stage factor flops %g not below exact %g",
				res.FactorFlops, exact.FactorFlops)
		}
	})

	t.Run("distributed", func(t *testing.T) {
		p, xtrue := cubicProblem(600, 5)
		newPlat := func() (*vgrid.Platform, []*vgrid.Host) {
			pl := vgrid.NewPlatform()
			var hosts []*vgrid.Host
			var nics []*vgrid.Link
			for i := 0; i < 4; i++ {
				hosts = append(hosts, pl.AddHost(string(rune('a'+i)), 1e9, 0))
				nics = append(nics, vgrid.NewLink(string(rune('a'+i)), 25e-6, 1.25e7))
			}
			for i := range hosts {
				for j := i + 1; j < len(hosts); j++ {
					pl.SetRoute(hosts[i], hosts[j], nics[i], nics[j])
				}
			}
			return pl, hosts
		}
		res, err := SolveDistributed(newPlat, p, Options{NewtonTol: 1e-9, Inner: inner})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.X {
			if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
				t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
			}
		}
		if res.Time <= 0 {
			t.Fatal("no virtual time accumulated")
		}
	})
}
