// Package repro is a Go reproduction of "Parallelization of direct
// algorithms using multisplitting methods in grid environments" (Bahi &
// Couturier, IPDPS 2005): multisplitting-direct linear solvers — the
// original system Ax = b is split into overlapping band subsystems, each
// direct-solved independently per processor, iterating with coarse-grained
// boundary exchanges — together with every substrate the paper's evaluation
// needs: a sequential sparse LU (the SuperLU stand-in), a distributed
// static-pivoting LU baseline (the SuperLU_DIST stand-in), a conservative
// discrete-event grid simulator with the paper's three cluster testbeds,
// and the full experiment harness for its tables and figure.
//
// This package is a facade over the internal packages; the common entry
// points are re-exported here so a downstream user needs a single import:
//
//	plt := repro.Cluster1(4, repro.MemUnlimited)
//	res, err := repro.Solve(plt.Platform, plt.Hosts, a, b, repro.Options{Tol: 1e-8})
//
// See the examples/ directory for runnable scenarios, cmd/msexp for the
// paper's tables, and DESIGN.md for the system inventory.
package repro

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dslu"
	"repro/internal/gen"
	"repro/internal/mmio"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
	"repro/internal/vgrid"
)

// Matrix is a compressed sparse row matrix (see internal/sparse).
type Matrix = sparse.CSR

// COO is a coordinate-format builder for Matrix.
type COO = sparse.COO

// NewCOO returns an empty coordinate builder.
func NewCOO(rows, cols int) *COO { return sparse.NewCOO(rows, cols) }

// Counter accumulates flop counts for the simulator's compute charging.
type Counter = vec.Counter

// Options configures a multisplitting solve (see internal/core.Options).
type Options = core.Options

// Result reports a multisplitting solve.
type Result = core.Result

// Weighting schemes for the E_lk matrices of the algorithmic model.
const (
	// WeightOwner is the block-Jacobi / multisubdomain-Schwarz choice.
	WeightOwner = core.WeightOwner
	// WeightAverage is the O'Leary–White / additive-Schwarz choice.
	WeightAverage = core.WeightAverage
)

// Solve runs the multisplitting-direct solver over the given simulated
// hosts and returns the assembled solution with timing statistics.
func Solve(pl *vgrid.Platform, hosts []*vgrid.Host, a *Matrix, b []float64, opt Options) (*Result, error) {
	return core.Solve(pl, hosts, a, b, opt)
}

// SolveSequential runs the synchronous multisplitting fixed point
// in-process (no simulated grid) over the given decomposition.
func SolveSequential(a *Matrix, b []float64, d *core.Decomposition, solver splu.Direct, tol float64, maxIter int, c *Counter) (*core.SeqResult, error) {
	return core.SolveSequential(a, b, d, solver, tol, maxIter, c)
}

// NewDecomposition splits n unknowns into nb bands with the given overlap.
func NewDecomposition(n, nb, overlap int, scheme core.WeightScheme) (*core.Decomposition, error) {
	return core.NewDecomposition(n, nb, overlap, scheme)
}

// DSLUSolve runs the distributed static-pivoting LU baseline.
func DSLUSolve(pl *vgrid.Platform, hosts []*vgrid.Host, a *Matrix, b []float64, opt dslu.Options) (*dslu.Result, error) {
	return dslu.Solve(pl, hosts, a, b, opt)
}

// SparseLU is the sequential Gilbert–Peierls sparse LU (SuperLU stand-in).
type SparseLU = splu.SparseLU

// Platform is a simulated cluster with its hosts.
type Platform = cluster.Platform

// MemUnlimited disables per-host memory accounting in the cluster builders.
const MemUnlimited int64 = -1

// Cluster1 builds the paper's 20-machine homogeneous cluster (first n
// machines).
func Cluster1(n int, mem int64) *Platform { return cluster.Cluster1(n, mem) }

// Cluster2 builds the paper's 8-machine heterogeneous cluster.
func Cluster2(mem int64) *Platform { return cluster.Cluster2(mem) }

// Cluster3 builds the paper's two-site distant cluster (7 + 3 machines).
func Cluster3(mem int64) *Platform { return cluster.Cluster3(mem) }

// DiagDominantOpts configures the diagonally dominant generator.
type DiagDominantOpts = gen.DiagDominantOpts

// DiagDominant generates the paper's diagonally dominant test matrices.
func DiagDominant(o DiagDominantOpts) *Matrix { return gen.DiagDominant(o) }

// CageLike generates a synthetic stand-in for the UF cage matrices.
func CageLike(n int, seed int64) *Matrix { return gen.CageLike(n, seed) }

// Poisson2D returns the 5-point Laplacian on an nx×ny grid.
func Poisson2D(nx, ny int) *Matrix { return gen.Poisson2D(nx, ny) }

// RHSForSolution manufactures b = A·xtrue with a known smooth xtrue.
func RHSForSolution(a *Matrix) (b, xtrue []float64) { return gen.RHSForSolution(a) }

// ReadMatrixFile loads a MatrixMarket file.
func ReadMatrixFile(path string) (*Matrix, error) { return mmio.ReadMatrixFile(path) }

// WriteMatrixFile stores a matrix in MatrixMarket format.
func WriteMatrixFile(path string, m *Matrix) error { return mmio.WriteMatrixFile(path, m) }
