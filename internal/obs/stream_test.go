package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/obs"
)

// streamedSolve runs the shared multi-cluster workload in streaming trace
// mode and returns the streamed trace bytes, the windowed JSON accumulated
// from the flush path, and the streamer for stat assertions.
func streamedSolve(t *testing.T, workers, lanes, ring int) (trace []byte, wj []byte, st *obs.Streamer, rec *obs.Recorder) {
	t.Helper()
	var buf bytes.Buffer
	rec, end := solveObserved(t, workers, lanes, func(r *obs.Recorder) {
		st = obs.NewStreamer(&buf, ring)
		st.AccumulateWindows(testWindowWidth)
		r.SetStream(st)
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wm := st.Windows(end)
	if wm == nil {
		t.Fatal("no windows from an accumulating streamer")
	}
	var bj bytes.Buffer
	if err := wm.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), bj.Bytes(), st, rec
}

// TestStreamedTraceByteIdentical: the streamed trace and the windows
// accumulated from its flush path must be byte-identical for any worker
// count and any lane count — the watermark flush rule (emit exactly the
// spans with End < t, in (End, Start, Track, seq) order) makes the output
// independent of where the watermarks fall.
func TestStreamedTraceByteIdentical(t *testing.T) {
	refTrace, refWin, refSt, refRec := streamedSolve(t, 1, 1, 0)
	if refSt.Flushed() == 0 {
		t.Fatal("no spans streamed")
	}
	if refSt.Flushed() != refRec.NumSpans() {
		t.Fatalf("flushed %d spans, recorder counted %d", refSt.Flushed(), refRec.NumSpans())
	}
	if refSt.OverflowFlushes() != 0 {
		t.Fatalf("default ring overflowed (%d force flushes)", refSt.OverflowFlushes())
	}
	if !json.Valid(refTrace) {
		t.Fatal("streamed trace is not valid JSON")
	}
	for _, tc := range []struct {
		name           string
		workers, lanes int
	}{
		{"workers=4/lanes=1", 4, 1},
		{"workers=1/lanes=auto", 1, 0},
		{"workers=4/lanes=auto", 4, 0},
	} {
		trace, win, _, _ := streamedSolve(t, tc.workers, tc.lanes, 0)
		if !bytes.Equal(refTrace, trace) {
			t.Fatalf("%s: streamed trace differs from 1 worker / 1 lane", tc.name)
		}
		if !bytes.Equal(refWin, win) {
			t.Fatalf("%s: streamed windows differ from 1 worker / 1 lane", tc.name)
		}
	}
}

// TestStreamRingBound: with a ring far smaller than the span population the
// flight recorder force-flushes instead of growing — peak occupancy stays
// at or under the ring size, the overflow counter records the earliness,
// and the output is still a complete valid trace.
func TestStreamRingBound(t *testing.T) {
	const ring = 4
	trace, _, st, rec := streamedSolve(t, 1, 1, ring)
	if st.PeakPending() > ring {
		t.Fatalf("peak pending %d exceeds ring %d", st.PeakPending(), ring)
	}
	if st.OverflowFlushes() == 0 {
		t.Fatalf("tiny ring never overflowed (%d spans)", rec.NumSpans())
	}
	if st.Flushed() != rec.NumSpans() {
		t.Fatalf("flushed %d of %d spans", st.Flushed(), rec.NumSpans())
	}
	if !json.Valid(trace) {
		t.Fatal("force-flushed trace is not valid JSON")
	}
}

// TestStreamedWindowsMatchBatch: the windows accumulated at flush time must
// agree with the batch ComputeWindows on the retained spans. Host rows are
// exact (per-track tiling gives both feeds the same accumulation order);
// link rows may differ in the last ulp (different summation order), so they
// compare with a relative tolerance.
func TestStreamedWindowsMatchBatch(t *testing.T) {
	_, wj, _, _ := streamedSolve(t, 1, 1, 0)
	streamed := &obs.WindowedMetrics{}
	if err := json.Unmarshal(wj, streamed); err != nil {
		t.Fatal(err)
	}
	rec, end := solveObserved(t, 1, 1, nil)
	batch := obs.ComputeWindows(rec, testWindowWidth, end, nil)

	if streamed.Windows != batch.Windows || streamed.Makespan != batch.Makespan {
		t.Fatalf("header mismatch: stream %d/%g vs batch %d/%g",
			streamed.Windows, streamed.Makespan, batch.Windows, batch.Makespan)
	}
	if len(streamed.Hosts) != len(batch.Hosts) {
		t.Fatalf("host rows: %d vs %d", len(streamed.Hosts), len(batch.Hosts))
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)) }
	for i := range batch.Hosts {
		s, b := streamed.Hosts[i], batch.Hosts[i]
		if s.Track != b.Track || s.W != b.W {
			t.Fatalf("host row %d keys: %s/%d vs %s/%d", i, s.Track, s.W, b.Track, b.W)
		}
		if !approx(s.Compute, b.Compute) || !approx(s.Wait, b.Wait) || !approx(s.Utilization, b.Utilization) {
			t.Fatalf("host row %s/w%d differs: %+v vs %+v", s.Track, s.W, s, b)
		}
	}
	if len(streamed.Links) != len(batch.Links) {
		t.Fatalf("link rows: %d vs %d", len(streamed.Links), len(batch.Links))
	}
	for i := range batch.Links {
		s, b := streamed.Links[i], batch.Links[i]
		if s.Link != b.Link || s.W != b.W {
			t.Fatalf("link row %d keys: %s/%d vs %s/%d", i, s.Link, s.W, b.Link, b.W)
		}
		if s.Bytes != b.Bytes || s.Msgs != b.Msgs {
			t.Fatalf("link row %s/w%d counts differ: %+v vs %+v", s.Link, s.W, s, b)
		}
		if !approx(s.QueueDelay, b.QueueDelay) || !approx(s.AgeSum, b.AgeSum) || !approx(s.AgeMax, b.AgeMax) {
			t.Fatalf("link row %s/w%d times differ: %+v vs %+v", s.Link, s.W, s, b)
		}
	}
	if len(streamed.Series) != len(batch.Series) {
		t.Fatalf("series rows: %d vs %d", len(streamed.Series), len(batch.Series))
	}
	for i := range batch.Series {
		if streamed.Series[i] != batch.Series[i] {
			t.Fatalf("series row %d differs: %+v vs %+v", i, streamed.Series[i], batch.Series[i])
		}
	}
}

// TestStreamerGuards: SetStream after recording has started must panic (the
// stream would silently miss the spans already retained), as must
// SetStream on a journal recorder.
func TestStreamerGuards(t *testing.T) {
	rec := &obs.Recorder{}
	rec.Span(obs.Span{Track: "h0", Cat: obs.CatCompute, Name: "c", Start: 0, End: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetStream after a recorded span: no panic")
			}
		}()
		rec.SetStream(obs.NewStreamer(&bytes.Buffer{}, 0))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetStream on a journal recorder: no panic")
			}
		}()
		obs.NewJournal().SetStream(obs.NewStreamer(&bytes.Buffer{}, 0))
	}()
	if rec.Streaming() {
		t.Error("recorder reports streaming without a stream")
	}
}
