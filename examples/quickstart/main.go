// Quickstart: solve a diagonally dominant system with the
// multisplitting-direct method, first sequentially (the paper's fixed-point
// iteration run in-process), then distributed across a simulated 4-machine
// cluster, and compare against the plain sequential sparse LU answer.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/splu"
	"repro/internal/vec"
)

func main() {
	// A strictly diagonally dominant matrix: Theorem 1 guarantees both the
	// synchronous and asynchronous variants converge (paper Prop. 1).
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 4000, Seed: 7})
	b, xtrue := gen.RHSForSolution(a)

	// Reference: one sequential sparse LU solve (what SuperLU would do).
	var cnt vec.Counter
	fact, err := (&splu.SparseLU{}).Factor(a, &cnt)
	if err != nil {
		log.Fatal(err)
	}
	xref := make([]float64, a.Rows)
	fact.Solve(xref, b, &cnt)
	fmt.Printf("sequential sparse LU:   error %.2e, %.0f Mflop\n",
		maxErr(xref, xtrue), cnt.Flops()/1e6)

	// Sequential multisplitting over 4 bands (the fixed point mapping of
	// the paper's Section 3, executed in-process).
	dec, err := core.NewDecomposition(a.Rows, 4, 0, core.WeightOwner)
	if err != nil {
		log.Fatal(err)
	}
	var cnt2 vec.Counter
	seq, err := core.SolveSequential(a, b, dec, &splu.SparseLU{}, 1e-10, 10000, &cnt2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential 4-band iteration: error %.2e in %d iterations\n",
		maxErr(seq.X, xtrue), seq.Iterations)

	// Distributed: the same decomposition across 4 simulated machines of
	// the paper's cluster1 (P4 2.6 GHz, 100 Mb LAN).
	plt := cluster.Cluster1(4, -1)
	res, err := core.Solve(plt.Platform, plt.Hosts, a, b, core.Options{Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (4 machines, synchronous): error %.2e, %d iterations, "+
		"%.4f virtual seconds (factorization %.4f)\n",
		maxErr(res.X, xtrue), res.Iterations, res.Time, res.FactorTime)

	// Asynchronous flavor: machines iterate at their own pace.
	plt2 := cluster.Cluster1(4, -1)
	res2, err := core.Solve(plt2.Platform, plt2.Hosts, a, b, core.Options{Tol: 1e-10, Async: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (4 machines, asynchronous): error %.2e, iterations per rank %v, "+
		"%.4f virtual seconds\n",
		maxErr(res2.X, xtrue), res2.IterationsPerRank, res2.Time)
}

func maxErr(x, xtrue []float64) float64 {
	worst := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xtrue[i]); d > worst {
			worst = d
		}
	}
	return worst
}
