package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/iterative"
	"repro/internal/sparse"
	"repro/internal/splu"
	"repro/internal/vec"
)

func residualInf(a interface {
	MulVec(y, x []float64, c *vec.Counter)
}, x, b []float64) float64 {
	y := make([]float64, len(b))
	var c vec.Counter
	a.MulVec(y, x, &c)
	r := 0.0
	for i := range y {
		if d := math.Abs(y[i] - b[i]); d > r {
			r = d
		}
	}
	return r
}

func TestSolveSequentialDominant(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 400, Seed: 1})
	b, xtrue := gen.RHSForSolution(a)
	d, _ := NewDecomposition(a.Rows, 4, 0, WeightOwner)
	var c vec.Counter
	res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 5000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
	if res.Iterations < 2 {
		t.Fatalf("suspiciously few iterations: %d", res.Iterations)
	}
}

func TestSolveSequentialCageLike(t *testing.T) {
	a := gen.CageLike(600, 3)
	b, xtrue := gen.RHSForSolution(a)
	d, _ := NewDecomposition(a.Rows, 6, 0, WeightOwner)
	var c vec.Counter
	res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 5000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
}

// With disjoint bands and owner weights, the multisplitting method is
// exactly block Jacobi (paper Remark 1): same iteration count, same answer.
func TestSequentialEqualsBlockJacobi(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 300, Seed: 4})
	b, _ := gen.RHSForSolution(a)
	nb := 5
	d, _ := NewDecomposition(a.Rows, nb, 0, WeightOwner)
	var c1, c2 vec.Counter
	tol := 1e-9
	ms, err := SolveSequential(a, b, d, &splu.SparseLU{}, tol, 5000, &c1)
	if err != nil {
		t.Fatal(err)
	}
	xbj := make([]float64, a.Rows)
	bj, err := iterative.BlockJacobi(a, iterative.UniformBlocks(a.Rows, nb), &splu.SparseLU{}, xbj, b, tol, 5000, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Iterations != bj.Iterations {
		t.Fatalf("multisplitting %d iterations vs block Jacobi %d", ms.Iterations, bj.Iterations)
	}
	for i := range xbj {
		if math.Abs(ms.X[i]-xbj[i]) > 1e-12*(1+math.Abs(xbj[i])) {
			t.Fatalf("iterates differ at %d: %v vs %v", i, ms.X[i], xbj[i])
		}
	}
}

// Overlap (Schwarz) reduces the iteration count on a tightly dominant
// matrix — the numerical-analysis fact behind Figure 3.
func TestOverlapReducesIterations(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 600, Margin: 0.05, Seed: 9})
	b, _ := gen.RHSForSolution(a)
	iters := map[int]int{}
	for _, ov := range []int{0, 30} {
		d, _ := NewDecomposition(a.Rows, 4, ov, WeightOwner)
		var c vec.Counter
		res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-8, 20000, &c)
		if err != nil {
			t.Fatalf("overlap %d: %v", ov, err)
		}
		iters[ov] = res.Iterations
	}
	if iters[30] >= iters[0] {
		t.Fatalf("overlap 30 took %d iterations, no better than %d without overlap", iters[30], iters[0])
	}
}

func TestAverageWeightsConverge(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 400, Margin: 0.2, Seed: 10})
	b, xtrue := gen.RHSForSolution(a)
	d, _ := NewDecomposition(a.Rows, 4, 20, WeightAverage)
	var c vec.Counter
	res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-9, 20000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
}

func TestSolveSequentialSingleBandIsDirect(t *testing.T) {
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 100, Seed: 2})
	b, xtrue := gen.RHSForSolution(a)
	d, _ := NewDecomposition(a.Rows, 1, 0, WeightOwner)
	var c vec.Counter
	res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 10, &c)
	if err != nil {
		t.Fatal(err)
	}
	// One band has no dependencies: the direct answer in the first solve,
	// convergence detected on the second iteration.
	if res.Iterations > 2 {
		t.Fatalf("single band took %d iterations", res.Iterations)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-8*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] wrong", i)
		}
	}
}

func TestSolveSequentialDivergenceDetected(t *testing.T) {
	// A = [[I, 2I], [2I, I]] has block-Jacobi iteration matrix of spectral
	// radius 2: the iterates blow up and the driver must report divergence,
	// not silently "converge" on overflowed values.
	m := 30
	co := sparseNewDivergent(m)
	a := co
	b := make([]float64, 2*m)
	b[0] = 1
	d, _ := NewDecomposition(2*m, 2, 0, WeightOwner)
	var c vec.Counter
	_, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-8, 5000, &c)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

// sparseNewDivergent builds [[I, 2I], [2I, I]] of size 2m.
func sparseNewDivergent(m int) *sparse.CSR {
	co := sparse.NewCOO(2*m, 2*m)
	for i := 0; i < m; i++ {
		co.Append(i, i, 1)
		co.Append(m+i, m+i, 1)
		co.Append(i, m+i, 2)
		co.Append(m+i, i, 2)
	}
	return co.ToCSR()
}

func TestSolveSequentialNoConvergence(t *testing.T) {
	// Converging but capped: a tightly dominant matrix stopped after two
	// iterations.
	a := gen.DiagDominant(gen.DiagDominantOpts{N: 200, Margin: 0.05, Seed: 6})
	b, _ := gen.RHSForSolution(a)
	d, _ := NewDecomposition(200, 4, 0, WeightOwner)
	var c vec.Counter
	_, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-12, 2, &c)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSolveSequentialShapeErrors(t *testing.T) {
	a := gen.Tridiag(10, -1, 4, -1)
	d, _ := NewDecomposition(9, 3, 0, WeightOwner)
	var c vec.Counter
	if _, err := SolveSequential(a, make([]float64, 10), d, &splu.SparseLU{}, 1e-8, 10, &c); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// Theorem 1 hypothesis check: for strictly dominant matrices every band
// splitting satisfies ρ(|M⁻¹N|) < 1, and the sequential iteration converges
// to A⁻¹b (property-based).
func TestTheorem1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		a := gen.RandomDominant(n, 3, 0.3, rng)
		nb := 2 + rng.Intn(3)
		if nb > n {
			nb = n
		}
		d, err := NewDecomposition(n, nb, 0, WeightOwner)
		if err != nil {
			return false
		}
		var c vec.Counter
		// Check ρ(|M⁻¹N|) < 1 for every band splitting.
		for _, band := range d.Bands {
			apply, err := iterative.AbsSplittingOperator(a, band.Start, band.End, &splu.SparseLU{}, &c)
			if err != nil {
				return false
			}
			rho, _ := iterative.PowerMethod(n, apply, 500, 1e-10)
			if rho >= 1 {
				return false
			}
		}
		b, xtrue := gen.RHSForSolution(a)
		res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 20000, &c)
		if err != nil {
			return false
		}
		for i := range res.X {
			if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// M-matrix class (paper Section 5.2): the Poisson matrix is an irreducibly
// dominant M-matrix; multisplitting must converge on it.
func TestMMatrixConvergence(t *testing.T) {
	a := gen.Poisson2D(20, 20)
	b, xtrue := gen.RHSForSolution(a)
	d, _ := NewDecomposition(a.Rows, 4, 10, WeightOwner)
	var c vec.Counter
	res, err := SolveSequential(a, b, d, &splu.SparseLU{}, 1e-10, 50000, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xtrue[i]) > 1e-6*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xtrue[i])
		}
	}
}
