// Package dense provides dense and banded matrix storage together with LU
// factorizations (partial pivoting) and triangular solves. These are the
// "any sequential direct solver" alternatives the paper's Section 2 allows a
// processor to plug into the multisplitting iteration.
package dense

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// ErrSingular is returned when a factorization meets an exactly zero pivot.
var ErrSingular = errors.New("dense: matrix is singular")

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("dense: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("dense: row out of range")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MulVec computes y = M*x.
func (m *Matrix) MulVec(y, x []float64, c *vec.Counter) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("dense: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	c.Add(2 * float64(m.Rows) * float64(m.Cols))
}

// LU is a dense LU factorization with partial pivoting: P·A = L·U with unit
// lower-triangular L stored below the diagonal of LU and U on and above it.
type LU struct {
	N     int
	LU    *Matrix
	Piv   []int // row i of the factor came from original row Piv[i]
	Flops float64
}

// FactorLU computes the dense LU factorization of a (which is not modified).
func FactorLU(a *Matrix, c *vec.Counter) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: FactorLU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	flops, err := factorLUInPlace(lu, piv)
	if err != nil {
		return nil, err
	}
	c.Add(flops)
	return &LU{N: n, LU: lu, Piv: piv, Flops: flops}, nil
}

// Refactor recomputes the factorization from the values of a, overwriting the
// existing factors in place with no allocation. Pivoting is redone from
// scratch, so the result is bit-identical to a fresh FactorLU(a). On error
// the factors are invalid and must not be used for solves.
func (f *LU) Refactor(a *Matrix, c *vec.Counter) error {
	if a.Rows != f.N || a.Cols != f.N {
		return fmt.Errorf("dense: Refactor needs %dx%d matrix, got %dx%d", f.N, f.N, a.Rows, a.Cols)
	}
	copy(f.LU.Data, a.Data)
	flops, err := factorLUInPlace(f.LU, f.Piv)
	if err != nil {
		return err
	}
	f.Flops = flops
	c.Add(flops)
	return nil
}

// factorLUInPlace eliminates lu in place with partial pivoting, filling piv
// with the source row of each pivotal row. Shared by FactorLU and LU.Refactor.
func factorLUInPlace(lu *Matrix, piv []int) (float64, error) {
	n := lu.Rows
	for i := range piv {
		piv[i] = i
	}
	flops := 0.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k, rows k..n-1.
		p := k
		best := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				best, p = a, i
			}
		}
		if best == 0 {
			return 0, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) / pivot
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
			flops += 2 * float64(n-k-1)
		}
		flops += float64(n - k - 1)
	}
	return flops, nil
}

// Solve computes x with A·x = b. b is not modified.
func (f *LU) Solve(x, b []float64, c *vec.Counter) {
	n := f.N
	if len(x) != n || len(b) != n {
		panic("dense: LU Solve shape mismatch")
	}
	// Apply permutation: y = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.Piv[i]]
	}
	// Forward solve L·y = P·b (unit diagonal).
	for i := 1; i < n; i++ {
		row := f.LU.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back solve U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := f.LU.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	c.Add(2 * float64(n) * float64(n))
}

// Band is a general band matrix with kl sub-diagonals and ku super-diagonals
// stored in LAPACK band layout with room for fill during pivoting: column j
// holds rows j-ku-kl .. j+kl in a (2kl+ku+1)×n array (the extra kl rows
// absorb pivot fill, as in LAPACK gbtrf).
type Band struct {
	N, KL, KU int
	// Data[(kl+ku+i-j) + j*stride] holds A(i,j) once factored; before
	// factorization entries live in rows kl..2kl+ku of each column.
	Data   []float64
	stride int
}

// NewBand returns a zeroed n×n band matrix with the given bandwidths.
func NewBand(n, kl, ku int) *Band {
	if n < 0 || kl < 0 || ku < 0 {
		panic("dense: negative band dimension")
	}
	stride := 2*kl + ku + 1
	return &Band{N: n, KL: kl, KU: ku, Data: make([]float64, stride*n), stride: stride}
}

// Set assigns A(i,j); |i-j| must lie within the band.
func (b *Band) Set(i, j int, v float64) {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		panic("dense: band index out of range")
	}
	if i-j > b.KL || j-i > b.KU {
		panic(fmt.Sprintf("dense: (%d,%d) outside band kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.Data[b.index(i, j)] = v
}

// At returns A(i,j), zero outside the band.
func (b *Band) At(i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		panic("dense: band index out of range")
	}
	if i-j > b.KL || j-i > b.KU {
		return 0
	}
	return b.Data[b.index(i, j)]
}

func (b *Band) index(i, j int) int {
	return (b.KL + b.KU + i - j) + j*b.stride
}

// BandLU is an LU factorization of a band matrix with partial pivoting.
type BandLU struct {
	b     *Band
	piv   []int
	Flops float64
}

// FactorBand factors the band matrix in place (gbtrf-style) and returns the
// factorization. The receiver is consumed: do not reuse b afterwards.
func FactorBand(b *Band, c *vec.Counter) (*BandLU, error) {
	piv := make([]int, b.N)
	flops, err := factorBandInPlace(b, piv)
	if err != nil {
		return nil, err
	}
	c.Add(flops)
	return &BandLU{b: b, piv: piv, Flops: flops}, nil
}

// Band returns the underlying band storage. Refactor callers zero it, refill
// it with new values (same pattern) and then call Refactor.
func (f *BandLU) Band() *Band { return f.b }

// Zero clears the band storage, including the pivot-fill rows.
func (b *Band) Zero() {
	for i := range b.Data {
		b.Data[i] = 0
	}
}

// Refactor re-runs the banded elimination on the values currently stored in
// f.Band() — the caller refills them first — reusing the pivot array and
// allocating nothing. On error the factors are invalid.
func (f *BandLU) Refactor(c *vec.Counter) error {
	flops, err := factorBandInPlace(f.b, f.piv)
	if err != nil {
		return err
	}
	f.Flops = flops
	c.Add(flops)
	return nil
}

// factorBandInPlace is the gbtrf-style elimination shared by FactorBand and
// BandLU.Refactor.
func factorBandInPlace(b *Band, piv []int) (float64, error) {
	n, kl, ku := b.N, b.KL, b.KU
	flops := 0.0
	// Effective upper bandwidth after pivoting grows to kl+ku.
	kv := kl + ku
	for k := 0; k < n; k++ {
		// Pivot search among rows k..min(k+kl, n-1) in column k.
		p := k
		best := math.Abs(b.at2(k, k, kv))
		iMax := k + kl
		if iMax > n-1 {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			if a := math.Abs(b.at2(i, k, kv)); a > best {
				best, p = a, i
			}
		}
		if best == 0 {
			return 0, ErrSingular
		}
		piv[k] = p
		jMax := k + kv
		if jMax > n-1 {
			jMax = n - 1
		}
		if p != k {
			for j := k; j <= jMax; j++ {
				vk := b.at2(k, j, kv)
				vp := b.at2(p, j, kv)
				b.set2(k, j, vp, kv)
				b.set2(p, j, vk, kv)
			}
		}
		pivot := b.at2(k, k, kv)
		for i := k + 1; i <= iMax; i++ {
			l := b.at2(i, k, kv) / pivot
			b.set2(i, k, l, kv)
			if l == 0 {
				continue
			}
			for j := k + 1; j <= jMax; j++ {
				b.set2(i, j, b.at2(i, j, kv)-l*b.at2(k, j, kv), kv)
			}
			flops += 2 * float64(jMax-k)
		}
	}
	return flops, nil
}

// at2/set2 access the factored layout where the upper bandwidth is kv=kl+ku.
func (b *Band) at2(i, j, kv int) float64 {
	if i-j > b.KL || j-i > kv {
		return 0
	}
	return b.Data[(b.KL+b.KU+i-j)+j*b.stride]
}

func (b *Band) set2(i, j int, v float64, kv int) {
	if i-j > b.KL || j-i > kv {
		if v != 0 {
			panic("dense: band fill outside storage")
		}
		return
	}
	b.Data[(b.KL+b.KU+i-j)+j*b.stride] = v
}

// Solve computes x with A·x = b0 using the band factorization.
func (f *BandLU) Solve(x, b0 []float64, c *vec.Counter) {
	b := f.b
	n, kl, ku := b.N, b.KL, b.KU
	kv := kl + ku
	if len(x) != n || len(b0) != n {
		panic("dense: BandLU Solve shape mismatch")
	}
	copy(x, b0)
	// Forward: apply row swaps and L (unit diagonal) in elimination order.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
		iMax := k + kl
		if iMax > n-1 {
			iMax = n - 1
		}
		for i := k + 1; i <= iMax; i++ {
			x[i] -= b.at2(i, k, kv) * x[k]
		}
	}
	// Back substitution with U (bandwidth kv).
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		jMax := i + kv
		if jMax > n-1 {
			jMax = n - 1
		}
		for j := i + 1; j <= jMax; j++ {
			s -= b.at2(i, j, kv) * x[j]
		}
		x[i] = s / b.at2(i, i, kv)
	}
	c.Add(2 * float64(n) * float64(kl+kv+1))
}
