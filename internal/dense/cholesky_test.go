package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func spdMatrix(rng *rand.Rand, n int) *Matrix {
	// B·Bᵀ + n·I is SPD.
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := spdMatrix(rng, 25)
	xtrue := make([]float64, 25)
	for i := range xtrue {
		xtrue[i] = rng.NormFloat64()
	}
	var c vec.Counter
	b := make([]float64, 25)
	a.MulVec(b, xtrue, &c)
	f, err := FactorCholesky(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 25)
	f.Solve(x, b, &c)
	for i := range x {
		if math.Abs(x[i]-xtrue[i]) > 1e-8*(1+math.Abs(xtrue[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
	if f.Flops <= 0 {
		t.Fatal("no flops reported")
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := spdMatrix(rng, 12)
	var c vec.Counter
	f, err := FactorCholesky(a, &c)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce A.
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			s := 0.0
			for k := 0; k <= min(i, j); k++ {
				s += f.L.At(i, k) * f.L.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-9*(1+math.Abs(a.At(i, j))) {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	var c vec.Counter
	if _, err := FactorCholesky(a, &c); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if _, err := FactorCholesky(NewMatrix(2, 3), &c); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := spdMatrix(rng, n)
		var c vec.Counter
		ch, err := FactorCholesky(a, &c)
		if err != nil {
			return false
		}
		xtrue := make([]float64, n)
		for i := range xtrue {
			xtrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xtrue, &c)
		x := make([]float64, n)
		ch.Solve(x, b, &c)
		for i := range x {
			if math.Abs(x[i]-xtrue[i]) > 1e-7*(1+math.Abs(xtrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
