// Package splu implements a sequential sparse LU direct solver in the style
// of SuperLU's left-looking predecessor (Gilbert–Peierls): per-column
// symbolic reachability by depth-first search, sparse triangular solve,
// threshold partial pivoting, and an optional fill-reducing column ordering.
//
// The package also defines the Direct/Factorization interfaces that let the
// multisplitting solver plug in *any* sequential direct method (sparse LU,
// dense LU or banded LU), exactly as Section 2 of the paper allows.
package splu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// ErrSingular is returned when no usable pivot exists for some column.
var ErrSingular = errors.New("splu: matrix is numerically singular")

// Factorization is a factored linear system ready for repeated solves. The
// multisplitting iteration factors once per band and then calls Solve every
// iteration (paper Remark 4).
type Factorization interface {
	// Solve computes x with A·x = b; b is not modified and may alias x.
	Solve(x, b []float64, c *vec.Counter)
	// FactorFlops returns the cost paid by Factor: the numeric elimination
	// flops plus the counted symbolic work (ordering, reachability search,
	// pattern assembly) under the op model documented in DESIGN.md. It
	// equals the amount Factor added to its Counter.
	FactorFlops() float64
	// SolveFlops returns the exact floating-point cost one Solve call counts.
	// Unlike the factorization cost it is known analytically once the
	// factors exist, which lets the iteration drivers declare a solve
	// segment's cost up front and run the arithmetic concurrently with other
	// processes (vgrid.Proc.ComputeFunc).
	SolveFlops() float64
	// Bytes returns the approximate memory held by the factors.
	Bytes() int64
}

// Direct is a pluggable sequential direct solver.
type Direct interface {
	// Name identifies the method in logs and experiment tables.
	Name() string
	// Factor computes a factorization of the square matrix a.
	Factor(a *sparse.CSR, c *vec.Counter) (Factorization, error)
}

// Ordering selects the column ordering used by the sparse LU.
type Ordering int

const (
	// OrderNatural factors the matrix as given.
	OrderNatural Ordering = iota
	// OrderRCM applies reverse Cuthill–McKee to reduce fill (best for
	// banded/local patterns; the default).
	OrderRCM
	// OrderMinDegree applies a minimum-degree ordering (best for
	// scattered patterns like the cage family).
	OrderMinDegree
)

// SparseLU is a Direct implementing the Gilbert–Peierls sparse LU.
type SparseLU struct {
	// Order selects the fill-reducing column ordering (default OrderRCM).
	Order Ordering
	// PivotTol is the threshold-pivoting relaxation in (0,1]: the diagonal
	// entry is kept as pivot when |d| >= PivotTol·max|column|. 1.0 gives
	// strict partial pivoting. Zero means 1.0.
	PivotTol float64
}

// Name implements Direct.
func (s *SparseLU) Name() string { return "sparse-lu" }

// sparseFactors holds L, U in compressed-column form with row indices in the
// pivotal (permuted) numbering, plus the row/column permutations.
//
// Beyond the factors themselves it retains the full output of the symbolic
// phase — the frozen L/U pattern, the pivot order and a scatter map from the
// input matrix's CSR positions into pivotal coordinates — so that Refactor
// can recompute the numeric values of a same-pattern matrix without ordering,
// DFS or allocation (see refactor.go).
type sparseFactors struct {
	n          int
	lp, li     []int
	lx         []float64
	up, ui     []int
	ux         []float64
	pinv       []int // pinv[origRow] = pivotal position
	q          []int // column k of the factorization is A(:, q[k]); nil = identity
	flops      float64
	symFlops   float64
	solveFlops float64

	// opts is the SparseLU configuration that produced this factorization;
	// the pivot-degradation fallback re-runs it from scratch.
	opts SparseLU
	tol  float64

	// Scatter map for Refactor: entry p of acp[k]..acp[k+1] says that the
	// input matrix's CSR value at position avp[p] lands at pivotal row
	// ari[p] of factorization column k.
	acp, ari, avp []int
	// refactorFlops is the exact numeric cost of one Refactor call, fully
	// determined by the frozen pattern (no zero-skips on the refactor path).
	refactorFlops float64
	// fallbacks counts Refactor calls that hit the pivot-degradation
	// fallback and re-ran the full factorization.
	fallbacks int

	// work is the Solve scratch, rwork the Refactor scatter scratch (held
	// all-zero between Refactor calls). Separate buffers: Solve leaves work
	// dirty. Single-owner like the factorization itself.
	work, rwork []float64
}

// Factor implements Direct. Besides the numeric elimination flops it counts
// the symbolic work — ordering, CSC conversion, scatter, DFS reachability,
// pivot scan and pattern assembly — under the 1-op-per-touch model of
// DESIGN.md, so the simulated factorization time reflects everything a real
// factorization does. Refactor (refactor.go) repeats only the numeric part.
func (s *SparseLU) Factor(a *sparse.CSR, c *vec.Counter) (Factorization, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("splu: need square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	tol := s.PivotTol
	if tol <= 0 || tol > 1 {
		tol = 1.0
	}
	sym := 0.0
	var q []int // q[k] = original column placed at position k
	if n > 2 {
		var perm []int // perm[old]=new
		switch s.Order {
		case OrderRCM:
			perm = order.RCM(a)
		case OrderMinDegree:
			perm = order.MinDegree(a)
		}
		if perm != nil {
			q = make([]int, n)
			for old, new_ := range perm {
				q[new_] = old
			}
			sym += 2 * float64(a.NNZ()) // ordering pass over the pattern
		}
	}
	ac := a.ToCSC()
	sym += 2 * float64(a.NNZ()) // transpose to column form

	f := &sparseFactors{
		n:    n,
		lp:   make([]int, n+1),
		up:   make([]int, n+1),
		pinv: make([]int, n),
		q:    q,
		opts: *s,
		tol:  tol,
	}
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	x := make([]float64, n)
	mark := make([]bool, n)
	reach := make([]int, n)  // output stack: reach set in topological order
	dstack := make([]int, n) // DFS node stack
	pstack := make([]int, n) // DFS position stack

	// Pre-size the factor arrays for the no-fill case (the narrow bands the
	// solvers hand us are close to it); discovered fill still grows them, but
	// the common case avoids the append-doubling churn.
	est := a.NNZ() + n
	f.li = make([]int, 0, est)
	f.lx = make([]float64, 0, est)
	f.ui = make([]int, 0, est)
	f.ux = make([]float64, 0, est)

	for k := 0; k < n; k++ {
		col := k
		if q != nil {
			col = q[k]
		}
		lo, hi := ac.ColPtr[col], ac.ColPtr[col+1]

		// Symbolic step: reach of pattern of A(:,col) in the graph of L.
		// (f.dfs counts its node and edge visits into f.symFlops.)
		top := n
		for p := lo; p < hi; p++ {
			i := ac.RowInd[p]
			if mark[i] {
				continue
			}
			top = f.dfs(i, mark, reach, dstack, pstack, top)
		}
		// Reach-set passes below (pivot scan, store/clear) touch each
		// element twice; the scatter touches each input entry once.
		sym += float64(hi-lo) + 2*float64(n-top)

		// Numeric step: scatter then eliminate in topological order.
		for p := lo; p < hi; p++ {
			x[ac.RowInd[p]] = ac.Val[p]
		}
		for px := top; px < n; px++ {
			j := reach[px]
			jn := f.pinv[j]
			if jn < 0 {
				continue
			}
			xj := x[j]
			if xj == 0 {
				continue
			}
			for p := f.lp[jn] + 1; p < f.lp[jn+1]; p++ {
				x[f.li[p]] -= f.lx[p] * xj
			}
			f.flops += 2 * float64(f.lp[jn+1]-f.lp[jn]-1)
		}

		// Pivot choice among not-yet-pivotal rows of the reach set.
		ipiv, a0 := -1, -1.0
		for px := top; px < n; px++ {
			i := reach[px]
			if f.pinv[i] < 0 {
				if t := math.Abs(x[i]); t > a0 {
					a0, ipiv = t, i
				}
			}
		}
		if ipiv == -1 || a0 <= 0 {
			return nil, ErrSingular
		}
		// Threshold pivoting: prefer the diagonal entry of the ordered
		// matrix when it is large enough.
		if f.pinv[col] < 0 && math.Abs(x[col]) >= a0*tol {
			ipiv = col
		}
		pivot := x[ipiv]
		f.pinv[ipiv] = k

		// Store U(:,k): entries whose rows are already pivotal + diagonal.
		for px := top; px < n; px++ {
			i := reach[px]
			if jn := f.pinv[i]; jn >= 0 && jn < k {
				f.ui = append(f.ui, jn)
				f.ux = append(f.ux, x[i])
			}
		}
		f.ui = append(f.ui, k)
		f.ux = append(f.ux, pivot)
		f.up[k+1] = len(f.ux)

		// Store L(:,k): pivot row (unit) then the remaining rows scaled.
		f.li = append(f.li, ipiv)
		f.lx = append(f.lx, 1)
		for px := top; px < n; px++ {
			i := reach[px]
			if f.pinv[i] < 0 {
				f.li = append(f.li, i)
				f.lx = append(f.lx, x[i]/pivot)
				f.flops++
			}
			x[i] = 0
			mark[i] = false
		}
		f.lp[k+1] = len(f.lx)
	}
	// Remap L's row indices into pivotal numbering.
	for p := range f.li {
		f.li[p] = f.pinv[f.li[p]]
	}
	f.solveFlops = 2 * float64(len(f.lx)+len(f.ux))
	sym += float64(len(f.lx) + len(f.ux)) // pattern assembly (one op per stored entry)
	f.symFlops += sym                     // dfs already accumulated its visits
	f.finishSymbolic(a)
	c.Add(f.flops + f.symFlops)
	return f, nil
}

// finishSymbolic freezes the symbolic phase's outputs for reuse: the scatter
// map from the input matrix's CSR layout into pivotal coordinates, the exact
// numeric cost of one Refactor pass and the solve/refactor scratch buffers.
func (f *sparseFactors) finishSymbolic(a *sparse.CSR) {
	n := f.n
	// qinv[origCol] = factorization column holding it.
	var qinv []int
	if f.q != nil {
		qinv = make([]int, n)
		for k, old := range f.q {
			qinv[old] = k
		}
	}
	nnz := a.NNZ()
	f.acp = make([]int, n+1)
	f.ari = make([]int, nnz)
	f.avp = make([]int, nnz)
	// Counting sort of the CSR entries by factorization column: within each
	// column, entries appear in increasing original-row order (deterministic).
	for _, j := range a.ColInd {
		k := j
		if qinv != nil {
			k = qinv[j]
		}
		f.acp[k+1]++
	}
	for k := 0; k < n; k++ {
		f.acp[k+1] += f.acp[k]
	}
	next := append([]int(nil), f.acp[:n]...)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColInd[p]
			if qinv != nil {
				k = qinv[k]
			}
			f.ari[next[k]] = f.pinv[i]
			f.avp[next[k]] = p
			next[k]++
		}
	}
	// Exact numeric cost of a Refactor pass: the elimination updates walk the
	// frozen pattern unconditionally (no value-dependent zero skips), so the
	// cost is known before any values arrive.
	rf := 0.0
	for k := 0; k < n; k++ {
		for p := f.up[k]; p < f.up[k+1]-1; p++ {
			jn := f.ui[p]
			rf += 2 * float64(f.lp[jn+1]-f.lp[jn]-1)
		}
		rf += float64(f.lp[k+1] - f.lp[k] - 1) // pivot divisions
	}
	f.refactorFlops = rf
	f.work = make([]float64, n)
	f.rwork = make([]float64, n)
}

// dfs pushes the reach set of node i (original row numbering) onto the
// output stack reach[top-1...], returning the new top. mark must be clear on
// unvisited nodes; the caller clears visited marks after consuming the set.
func (f *sparseFactors) dfs(i int, mark []bool, reach, dstack, pstack []int, top int) int {
	head := 0
	dstack[0] = i
	for head >= 0 {
		j := dstack[head]
		jn := f.pinv[j]
		if !mark[j] {
			mark[j] = true
			f.symFlops++ // node visit
			if jn < 0 {
				pstack[head] = 0
			} else {
				pstack[head] = f.lp[jn] + 1 // skip unit pivot entry
			}
		}
		done := true
		if jn >= 0 {
			end := f.lp[jn+1]
			for p := pstack[head]; p < end; p++ {
				f.symFlops++ // edge scan
				childPivotal := f.li[p]
				// During factorization li holds original row indices.
				child := childPivotal
				if mark[child] {
					continue
				}
				pstack[head] = p + 1
				head++
				dstack[head] = child
				done = false
				break
			}
		}
		if done {
			head--
			top--
			reach[top] = j
		}
	}
	return top
}

// Solve implements Factorization. It is allocation-free: the permuted
// right-hand side lives in the factorization's scratch buffer, which makes
// the multisplitting iteration's hot path (one Solve per band per iteration)
// run without garbage.
func (f *sparseFactors) Solve(x, b []float64, c *vec.Counter) {
	n := f.n
	if len(x) != n || len(b) != n {
		panic("splu: Solve shape mismatch")
	}
	y := f.work
	if y == nil {
		y = make([]float64, n)
	}
	// y = P·b.
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	// Forward solve L·y = P·b (column-oriented, unit diagonal).
	for k := 0; k < n; k++ {
		yk := y[k]
		if yk == 0 {
			continue
		}
		for p := f.lp[k] + 1; p < f.lp[k+1]; p++ {
			y[f.li[p]] -= f.lx[p] * yk
		}
	}
	// Back solve U·z = y (diagonal entry is last in each column).
	for k := n - 1; k >= 0; k-- {
		d := f.ux[f.up[k+1]-1]
		y[k] /= d
		yk := y[k]
		for p := f.up[k]; p < f.up[k+1]-1; p++ {
			y[f.ui[p]] -= f.ux[p] * yk
		}
	}
	// Undo the column ordering: x[q[k]] = z[k].
	if f.q != nil {
		for k := 0; k < n; k++ {
			x[f.q[k]] = y[k]
		}
	} else {
		copy(x, y)
	}
	c.Add(f.solveFlops)
}

// FactorFlops implements Factorization: numeric plus counted symbolic work.
func (f *sparseFactors) FactorFlops() float64 { return f.flops + f.symFlops }

// NumericFlops returns only the numeric elimination cost (diagnostics).
func (f *sparseFactors) NumericFlops() float64 { return f.flops }

// SolveFlops implements Factorization.
func (f *sparseFactors) SolveFlops() float64 { return f.solveFlops }

// Bytes implements Factorization.
func (f *sparseFactors) Bytes() int64 {
	entries := int64(len(f.lx) + len(f.ux))
	idx := int64(len(f.li)+len(f.ui)) + int64(3*(f.n+1))
	return entries*8 + idx*8
}

// NNZFactors returns nnz(L) and nnz(U) (diagnostics and fill measurements).
func (f *sparseFactors) NNZFactors() (lnz, unz int) { return len(f.lx), len(f.ux) }

// DenseSolver adapts the dense LU of internal/dense to the Direct interface.
type DenseSolver struct{}

// Name implements Direct.
func (DenseSolver) Name() string { return "dense-lu" }

// Factor implements Direct.
func (DenseSolver) Factor(a *sparse.CSR, c *vec.Counter) (Factorization, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("splu: need square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	d := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d.Set(i, a.ColInd[p], a.Val[p])
		}
	}
	lu, err := dense.FactorLU(d, c)
	if err != nil {
		return nil, err
	}
	return &denseFact{lu: lu, n: n, scratch: d}, nil
}

type denseFact struct {
	lu *dense.LU
	n  int
	// scratch is the dense image of the input, reused by Refactor so a
	// numeric re-factorization allocates nothing.
	scratch *dense.Matrix
}

func (f *denseFact) Solve(x, b []float64, c *vec.Counter) { f.lu.Solve(x, b, c) }
func (f *denseFact) FactorFlops() float64                 { return f.lu.Flops }
func (f *denseFact) SolveFlops() float64                  { return 2 * float64(f.n) * float64(f.n) }
func (f *denseFact) Bytes() int64                         { return int64(f.n) * int64(f.n) * 8 }

// CholeskySolver adapts the dense Cholesky factorization to the Direct
// interface, for symmetric positive definite bands (e.g. discretized
// Laplacians). Factor fails with dense.ErrNotSPD on indefinite input.
type CholeskySolver struct{}

// Name implements Direct.
func (CholeskySolver) Name() string { return "cholesky" }

// Factor implements Direct.
func (CholeskySolver) Factor(a *sparse.CSR, c *vec.Counter) (Factorization, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("splu: need square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	d := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d.Set(i, a.ColInd[p], a.Val[p])
		}
	}
	ch, err := dense.FactorCholesky(d, c)
	if err != nil {
		return nil, err
	}
	return &cholFact{ch: ch, n: n, scratch: d}, nil
}

type cholFact struct {
	ch *dense.Cholesky
	n  int
	// scratch is the dense image of the input, reused by Refactor.
	scratch *dense.Matrix
}

func (f *cholFact) Solve(x, b []float64, c *vec.Counter) { f.ch.Solve(x, b, c) }
func (f *cholFact) FactorFlops() float64                 { return f.ch.Flops }
func (f *cholFact) SolveFlops() float64                  { return 2 * float64(f.n) * float64(f.n) }
func (f *cholFact) Bytes() int64                         { return int64(f.n) * int64(f.n) * 8 }

// BandSolver adapts the banded LU to the Direct interface. When Reorder is
// true the matrix is first RCM-permuted to shrink the band.
type BandSolver struct {
	// Reorder enables the RCM pre-permutation (kept only when it shrinks
	// the band).
	Reorder bool
}

// Name implements Direct.
func (BandSolver) Name() string { return "band-lu" }

// Factor implements Direct.
func (s BandSolver) Factor(a *sparse.CSR, c *vec.Counter) (Factorization, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("splu: need square matrix, got %dx%d", a.Rows, a.Cols)
	}
	var perm []int
	m := a
	if s.Reorder && a.Rows > 2 {
		perm = order.RCM(a)
		if order.BandAfter(a, perm) < a.Bandwidth() {
			m = a.Permute(perm, perm)
		} else {
			perm = nil
		}
	}
	bw := m.Bandwidth()
	band := dense.NewBand(m.Rows, bw, bw)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			band.Set(i, m.ColInd[p], m.Val[p])
		}
	}
	lu, err := dense.FactorBand(band, c)
	if err != nil {
		return nil, err
	}
	f := &bandFact{lu: lu, n: m.Rows, kl: bw, ku: bw, perm: perm}
	if perm != nil {
		f.pb = make([]float64, m.Rows)
		f.px = make([]float64, m.Rows)
	}
	return f, nil
}

type bandFact struct {
	lu     *dense.BandLU
	n      int
	kl, ku int
	perm   []int // symmetric permutation applied before factoring, or nil
	// pb/px hold the permuted right-hand side and solution so the permuted
	// Solve path is allocation-free (single-owner, like the factorization).
	pb, px []float64
}

func (f *bandFact) Solve(x, b []float64, c *vec.Counter) {
	if f.perm == nil {
		f.lu.Solve(x, b, c)
		return
	}
	for i, v := range b {
		f.pb[f.perm[i]] = v
	}
	f.lu.Solve(f.px, f.pb, c)
	for i := range x {
		x[i] = f.px[f.perm[i]]
	}
}

func (f *bandFact) FactorFlops() float64 { return f.lu.Flops }

// SolveFlops mirrors dense.BandLU.Solve's count with kv = kl+ku.
func (f *bandFact) SolveFlops() float64 {
	return 2 * float64(f.n) * float64(f.kl+(f.kl+f.ku)+1)
}

func (f *bandFact) Bytes() int64 {
	return int64(f.n) * int64(2*f.kl+f.ku+1) * 8
}
