package mp

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/vgrid"
)

// world builds a fully connected n-host LAN and runs body on each rank.
func world(t *testing.T, n int, body func(c *Comm) error) *vgrid.Engine {
	t.Helper()
	pl := vgrid.NewPlatform()
	hosts := make([]*vgrid.Host, n)
	for i := range hosts {
		hosts[i] = pl.AddHost(fmt.Sprintf("h%d", i), 1e9, 0)
	}
	lan := vgrid.NewLink("lan", 5e-5, 1.25e7)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pl.SetRoute(hosts[i], hosts[j], lan)
		}
	}
	e := vgrid.NewEngine(pl)
	Launch(e, hosts, "w", body)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRankSize(t *testing.T) {
	seen := make([]bool, 5)
	world(t, 5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size = %d", c.Size())
		}
		seen[c.Rank()] = true
		return nil
	})
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestSendRecvFloats(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendFloats(1, 3, []float64{1, 2, 3})
		}
		pk := c.Recv(0, 3)
		if pk.From != 0 || pk.Tag != 3 || len(pk.Floats) != 3 || pk.Floats[2] != 3 {
			return fmt.Errorf("bad packet %+v", pk)
		}
		return nil
	})
}

func TestSendCopiesPayload(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []float64{7}
			if err := c.SendFloats(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // mutate after send: receiver must still see 7
			return nil
		}
		pk := c.Recv(0, 0)
		if pk.Floats[0] != 7 {
			return fmt.Errorf("payload aliased: got %v", pk.Floats[0])
		}
		return nil
	})
}

func TestSendInts(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendInts(1, 2, []int{4, 5})
		}
		pk := c.Recv(0, 2)
		if len(pk.Ints) != 2 || pk.Ints[1] != 5 {
			return fmt.Errorf("bad ints %v", pk.Ints)
		}
		return nil
	})
}

func TestSignalAndTryRecv(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(1e6)
			return c.Signal(1, 5)
		}
		if pk := c.TryRecv(0, 5); pk != nil {
			return errors.New("signal visible before it was sent")
		}
		c.Compute(1e9) // long enough for the signal to arrive
		if pk := c.TryRecv(0, 5); pk == nil {
			return errors.New("signal not visible after compute")
		}
		return nil
	})
}

func TestDrainLatest(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 1; i <= 4; i++ {
				if err := c.SendFloats(1, 0, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		c.Compute(1e9)
		pk := c.DrainLatest(0, 0)
		if pk == nil || pk.Floats[0] != 4 {
			return fmt.Errorf("DrainLatest = %+v, want value 4", pk)
		}
		if extra := c.TryRecv(0, 0); extra != nil {
			return errors.New("drain left messages behind")
		}
		return nil
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	after := make([]float64, 4)
	world(t, 4, func(c *Comm) error {
		// Ranks do different amounts of work, then meet at the barrier.
		c.Compute(1e8 * float64(c.Rank()+1))
		if err := c.Barrier(); err != nil {
			return err
		}
		after[c.Rank()] = c.Now()
		return nil
	})
	// Everyone leaves the barrier at or after the slowest rank's entry time
	// (0.4 s of compute on rank 3).
	for r, ti := range after {
		if ti < 0.4 {
			t.Fatalf("rank %d left barrier at %v, before slowest entry", r, ti)
		}
	}
}

func TestBarrierSingleRank(t *testing.T) {
	world(t, 1, func(c *Comm) error { return c.Barrier() })
}

func TestAllreduceOps(t *testing.T) {
	world(t, 4, func(c *Comm) error {
		v := float64(c.Rank() + 1) // 1..4
		sum, err := c.Allreduce(v, OpSum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("sum = %v, want 10", sum)
		}
		mx, err := c.Allreduce(v, OpMax)
		if err != nil {
			return err
		}
		if mx != 4 {
			return fmt.Errorf("max = %v", mx)
		}
		mn, err := c.Allreduce(v, OpMin)
		if err != nil {
			return err
		}
		if mn != 1 {
			return fmt.Errorf("min = %v", mn)
		}
		return nil
	})
}

func TestAllreduceBool(t *testing.T) {
	world(t, 3, func(c *Comm) error {
		all, err := c.AllreduceBool(true)
		if err != nil {
			return err
		}
		if !all {
			return errors.New("all-true AND = false")
		}
		all, err = c.AllreduceBool(c.Rank() != 1)
		if err != nil {
			return err
		}
		if all {
			return errors.New("AND with one false = true")
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	world(t, 4, func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.71}
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			return fmt.Errorf("rank %d bcast got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	world(t, 3, func(c *Comm) error {
		mine := []float64{float64(c.Rank()) * 10}
		got, err := c.Gather(0, mine)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if got != nil {
				return errors.New("non-root got gather data")
			}
			return nil
		}
		for r := 0; r < 3; r++ {
			if got[r][0] != float64(r)*10 {
				return fmt.Errorf("gather[%d] = %v", r, got[r])
			}
		}
		return nil
	})
}

func TestTreeCollectives(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		world(t, n, func(c *Comm) error {
			c.Tree = true
			if err := c.Barrier(); err != nil {
				return err
			}
			sum, err := c.Allreduce(float64(c.Rank()+1), OpSum)
			if err != nil {
				return err
			}
			want := float64(n*(n+1)) / 2
			if sum != want {
				return fmt.Errorf("n=%d: tree sum = %v, want %v", n, sum, want)
			}
			mx, err := c.Allreduce(float64(c.Rank()), OpMax)
			if err != nil {
				return err
			}
			if mx != float64(n-1) {
				return fmt.Errorf("tree max = %v", mx)
			}
			var data []float64
			if c.Rank() == 0 {
				data = []float64{42, 43}
			}
			got, err := c.Bcast(0, data)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != 42 || got[1] != 43 {
				return fmt.Errorf("tree bcast got %v", got)
			}
			return nil
		})
	}
}

func TestTreeAllreduceMatchesFlat(t *testing.T) {
	var flat, tree float64
	world(t, 7, func(c *Comm) error {
		v := float64(c.Rank()*c.Rank()) - 3
		f, err := c.Allreduce(v, OpMin)
		if err != nil {
			return err
		}
		c.Tree = true
		tr, err := c.Allreduce(v, OpMin)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			flat, tree = f, tr
		}
		return nil
	})
	if flat != tree {
		t.Fatalf("flat %v != tree %v", flat, tree)
	}
}

func TestCommunicationChargesTime(t *testing.T) {
	var endTimes [2]float64
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.SendFloats(1, 0, make([]float64, 125000)); err != nil { // 1 MB
				return err
			}
		} else {
			c.Recv(0, 0)
		}
		endTimes[c.Rank()] = c.Now()
		return nil
	})
	// 1 MB over 12.5 MB/s is 0.08 s.
	if endTimes[1] < 0.08 {
		t.Fatalf("receiver finished at %v, transfer undercharged", endTimes[1])
	}
	if math.Abs(endTimes[1]-0.08) > 0.01 {
		t.Fatalf("receiver finished at %v, want about 0.08", endTimes[1])
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				panic("expected panic for out-of-range tag")
			}
		}()
		return c.SendFloats(1, internalTagBase, nil)
	})
}
